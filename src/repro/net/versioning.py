"""Vector-clock versioning for leaderless replication.

Every value stored under the leaderless mode carries a
:class:`VectorClock` — one counter per coordinating node — so causality
is explicit on the wire: a replica can tell whether an incoming version
*descends* its own (apply it), is *dominated* by it (ignore, and tell
the sender to repair itself), or is *concurrent* (a genuine conflict:
two coordinators accepted writes on opposite sides of a partition).

Concurrent versions are retained as **siblings** in the
:class:`VersionStore`; nothing is silently discarded.  Reads surface
the conflict count, and resolution to a single answer uses an explicit
last-writer-wins tiebreak over the version's deterministic
``(sim-time, coordinator, seq)`` stamp — a *policy*, applied at the
edges, never inside the merge math.  A later write through any
coordinator merges all known sibling clocks and therefore dominates
(supersedes) the whole conflict set, which is how conflicts drain.

All state is plain sorted tuples and the module is free of wall-clock
or unseeded randomness, so same-seed runs serialize byte-identically —
the repo-wide determinism rule.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "VectorClock",
    "Version",
    "VersionStore",
    "reconcile",
]

#: :meth:`VectorClock.compare` outcomes
BEFORE = -1
EQUAL = 0
AFTER = 1
CONCURRENT = 2


class VectorClock:
    """An immutable mapping node → update counter.

    The partial order: ``a`` descends ``b`` when every counter in ``a``
    is >= the matching counter in ``b`` (absent = 0).  Strictly greater
    somewhere → ``a`` is causally *after* ``b``; each strictly greater
    somewhere → *concurrent*.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Tuple[str, int]] = ()):
        merged: Dict[str, int] = {}
        for node, count in items:
            if count < 0:
                raise ValueError(f"negative clock entry {node}={count}")
            if count > merged.get(node, 0):
                merged[node] = count
        self._items: Tuple[Tuple[str, int], ...] = tuple(sorted(merged.items()))

    # -- algebra -----------------------------------------------------------

    def bump(self, node: str) -> "VectorClock":
        """A new clock with ``node``'s counter incremented."""
        counts = dict(self._items)
        counts[node] = counts.get(node, 0) + 1
        return VectorClock(counts.items())

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum (commutative, associative, idempotent)."""
        counts = dict(self._items)
        for node, count in other._items:
            if count > counts.get(node, 0):
                counts[node] = count
        return VectorClock(counts.items())

    def compare(self, other: "VectorClock") -> int:
        """BEFORE, EQUAL, AFTER, or CONCURRENT (a partial order)."""
        mine, theirs = dict(self._items), dict(other._items)
        less = any(mine.get(n, 0) < c for n, c in theirs.items())
        more = any(c > theirs.get(n, 0) for n, c in mine.items())
        if less and more:
            return CONCURRENT
        if more:
            return AFTER
        if less:
            return BEFORE
        return EQUAL

    def descends(self, other: "VectorClock") -> bool:
        """True when this clock is causally >= ``other``."""
        return self.compare(other) in (EQUAL, AFTER)

    # -- plumbing ----------------------------------------------------------

    def items(self) -> Tuple[Tuple[str, int], ...]:
        return self._items

    def wire(self) -> List[List]:
        """JSON-shaped payload form (lists survive dict-free transports)."""
        return [[node, count] for node, count in self._items]

    @classmethod
    def from_wire(cls, payload: Iterable) -> "VectorClock":
        return cls((str(node), int(count)) for node, count in payload)

    def __eq__(self, other) -> bool:
        return isinstance(other, VectorClock) and self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        body = ",".join(f"{n}:{c}" for n, c in self._items)
        return f"<VC {body or 'empty'}>"


@dataclass(frozen=True)
class Version:
    """One stored value version: payload metadata plus causality.

    ``stamp`` is the deterministic last-writer-wins tiebreak key —
    ``(coordination sim-time, coordinator name, per-coordinator seq)``
    — compared lexicographically, used *only* when clocks are
    concurrent.  ``size == 0 with op == "delete"`` is a tombstone.
    """

    clock: VectorClock
    size: int
    op: str  # "put" | "delete"
    stamp: Tuple[float, str, int]

    @property
    def tombstone(self) -> bool:
        return self.op == "delete"

    def wire(self) -> Dict:
        return {
            "clock": self.clock.wire(),
            "size": self.size,
            "op": self.op,
            "stamp": [self.stamp[0], self.stamp[1], self.stamp[2]],
        }

    @classmethod
    def from_wire(cls, payload: Dict) -> "Version":
        stamp = payload["stamp"]
        return cls(
            clock=VectorClock.from_wire(payload["clock"]),
            size=int(payload["size"]),
            op=str(payload["op"]),
            stamp=(float(stamp[0]), str(stamp[1]), int(stamp[2])),
        )

    def key(self) -> Tuple:
        """Canonical identity for digests and set comparison."""
        return (self.clock.items(), self.size, self.op, self.stamp)


def reconcile(versions: Iterable[Version]) -> Tuple[Optional[Version], List[Version]]:
    """Collapse a version set to ``(winner, surviving siblings)``.

    Dominated versions are dropped by clock comparison alone.  When
    more than one concurrent version survives, every survivor is kept
    (the siblings) and the winner is the max ``stamp`` — the explicit
    last-writer-wins tiebreak policy, applied only across genuinely
    concurrent versions.  Returns ``(None, [])`` for an empty set.
    """
    survivors: List[Version] = []
    for candidate in versions:
        dominated = False
        kept: List[Version] = []
        for other in survivors:
            relation = other.clock.compare(candidate.clock)
            if relation in (AFTER, EQUAL):
                dominated = True
                kept = survivors
                break
            if relation != BEFORE:
                kept.append(other)  # concurrent: both survive
        if not dominated:
            survivors = kept + [candidate]
    if not survivors:
        return None, []
    survivors.sort(key=Version.key)
    winner = max(survivors, key=lambda v: v.stamp)
    return winner, survivors


class VersionStore:
    """Per-node (tenant, key) → surviving version set.

    The store holds causality metadata only; the value bytes live in
    the node's LSM engine (written through the full charged path).  Its
    contents drive coordinator clock generation, read repair, digest
    computation, and the convergence checks in tests/experiments.
    """

    def __init__(self, node: str):
        self.node = node
        self._versions: Dict[Tuple[str, int], Tuple[Version, ...]] = {}
        #: writes ignored because the incoming clock was dominated
        self.stale_inserts = 0

    # -- coordinator-side --------------------------------------------------

    def next_clock(self, tenant: str, key: int) -> VectorClock:
        """The clock for a fresh local coordination of (tenant, key):
        the merge of every known sibling, bumped at this node — it
        therefore supersedes the entire visible conflict set."""
        merged = VectorClock()
        for version in self._versions.get((tenant, key), ()):
            merged = merged.merge(version.clock)
        return merged.bump(self.node)

    # -- replica-side ------------------------------------------------------

    def insert(self, tenant: str, key: int, version: Version) -> bool:
        """Fold one version in; True if it changed the surviving set
        (False = it was dominated or already present: nothing to apply).
        """
        slot = (tenant, key)
        current = self._versions.get(slot, ())
        for existing in current:
            if existing.clock.descends(version.clock):
                self.stale_inserts += 1
                return False
        _winner, survivors = reconcile(list(current) + [version])
        self._versions[slot] = tuple(survivors)
        return True

    def get(self, tenant: str, key: int) -> Tuple[Version, ...]:
        return self._versions.get((tenant, key), ())

    def resolve(self, tenant: str, key: int) -> Tuple[Optional[Version], int]:
        """(LWW winner, sibling count) for a key; (None, 0) if absent."""
        winner, survivors = reconcile(self._versions.get((tenant, key), ()))
        return winner, len(survivors)

    # -- enumeration / digests ---------------------------------------------

    def keys_in(self, tenant: str, pid: int, partitions: int) -> List[int]:
        """Keys of ``tenant`` falling in partition ``pid``, sorted."""
        return sorted(
            key
            for (t, key) in self._versions
            if t == tenant and key % partitions == pid
        )

    def digest(
        self, tenant: str, pid: int, partitions: int, buckets: int
    ) -> Tuple[int, Tuple[int, ...]]:
        """Merkle-style (root, per-bucket) CRC digest of a partition.

        Keys bucket by ``key % buckets``; each bucket hashes its sorted
        ``(key, version identity)`` entries, and the root hashes the
        bucket vector — two identical stores always digest identically,
        and a difference narrows to the divergent buckets.
        """
        bucket_bits = [b"" for _ in range(buckets)]
        for key in self.keys_in(tenant, pid, partitions):
            entry = repr((key, tuple(v.key() for v in self._versions[(tenant, key)])))
            idx = key % buckets
            bucket_bits[idx] += entry.encode()
        bucket_hashes = tuple(zlib.crc32(bits) for bits in bucket_bits)
        root = zlib.crc32(repr(bucket_hashes).encode())
        return root, bucket_hashes

    def fingerprint(self, tenant: str, pid: int, partitions: int) -> Tuple:
        """Canonical (key, versions) listing for convergence checks."""
        return tuple(
            (key, tuple(v.key() for v in self._versions[(tenant, key)]))
            for key in self.keys_in(tenant, pid, partitions)
        )
