"""Simulated network fabric, RPC, replication, and failover.

The cluster-layer substrate the paper assumes but does not model:
cross-node messages cost simulated time on NIC/link resources
(:mod:`.fabric`), request/response RPC adds correlation, per-attempt
timeouts, and retry budgets (:mod:`.rpc`), partitions are replicated
primary-backup with write quorums or Dynamo-style leaderless with
vector clocks, sloppy quorums, and hinted handoff
(:mod:`.replication`, :mod:`.versioning`), heartbeat failure detection
promotes backups — or, leaderless, revives healed nodes —
(:mod:`.failover`), and background anti-entropy converges cold
divergence (:mod:`.antientropy`).  Applications come in through
:class:`~repro.net.client.ClusterClient`.
"""

from .antientropy import AntiEntropyService
from .client import ClusterClient
from .fabric import LinkStats, NetConfig, NetworkFabric, Nic
from .failover import FailoverRecord, FailureDetector, HeartbeatService
from .replication import KvService, Membership
from .rpc import ACK_BYTES, RpcEndpoint, RpcError, RpcMessage, RpcStats
from .versioning import VectorClock, Version, VersionStore, reconcile

__all__ = [
    "ACK_BYTES",
    "AntiEntropyService",
    "ClusterClient",
    "FailoverRecord",
    "FailureDetector",
    "HeartbeatService",
    "KvService",
    "LinkStats",
    "Membership",
    "NetConfig",
    "NetworkFabric",
    "Nic",
    "RpcEndpoint",
    "RpcError",
    "RpcMessage",
    "RpcStats",
    "VectorClock",
    "Version",
    "VersionStore",
    "reconcile",
]
