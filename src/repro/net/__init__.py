"""Simulated network fabric, RPC, replication, and failover.

The cluster-layer substrate the paper assumes but does not model:
cross-node messages cost simulated time on NIC/link resources
(:mod:`.fabric`), request/response RPC adds correlation, per-attempt
timeouts, and retry budgets (:mod:`.rpc`), partitions are replicated
primary-backup with write quorums (:mod:`.replication`), and heartbeat
failure detection promotes backups when a node dies (:mod:`.failover`).
Applications come in through :class:`~repro.net.client.ClusterClient`.
"""

from .client import ClusterClient
from .fabric import LinkStats, NetConfig, NetworkFabric, Nic
from .failover import FailoverRecord, FailureDetector, HeartbeatService
from .replication import KvService, Membership
from .rpc import ACK_BYTES, RpcEndpoint, RpcError, RpcMessage, RpcStats

__all__ = [
    "ACK_BYTES",
    "ClusterClient",
    "FailoverRecord",
    "FailureDetector",
    "HeartbeatService",
    "KvService",
    "LinkStats",
    "Membership",
    "NetConfig",
    "NetworkFabric",
    "Nic",
    "RpcEndpoint",
    "RpcError",
    "RpcMessage",
    "RpcStats",
]
