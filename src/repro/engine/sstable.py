"""Immutable sorted data files (SSTables).

Layout mirrors LevelDB's table format at the granularity the IO model
cares about: an index region at the head of the file (one entry per
data block, packed into 4 KiB index blocks) followed by the data
blocks.  A point lookup costs one 4 KiB *index block* read — paid even
when the key turns out to be absent, which is exactly the GET
amplification of §3.1 — and, on a hit, a read of the 4 KiB-aligned data
span holding the object.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Tuple

from ..core.tags import IoTag
from ..sim import Event, Simulator
from ..ssd import SimFile, SimFilesystem
from .bloom import BloomFilter

__all__ = ["SsTable", "TableBuilder", "BLOCK_SIZE", "INDEX_ENTRY_BYTES"]

BLOCK_SIZE = 4096
#: bytes per index entry (key + offset + length, LevelDB-ish)
INDEX_ENTRY_BYTES = 24


class SsTable:
    """Metadata for one immutable sorted file."""

    _ids = 0

    def __init__(
        self,
        file: SimFile,
        keys: List[int],
        sizes: List[int],
        offsets: List[int],
        index_bytes: int,
        bloom: Optional[BloomFilter] = None,
    ):
        SsTable._ids += 1
        self.table_id = SsTable._ids
        self.file = file
        self.keys = keys  # sorted
        self.sizes = sizes  # TOMBSTONE for deletes
        self.offsets = offsets  # data offsets within the file
        self.index_bytes = index_bytes
        #: optional Bloom filter (LevelDB FilterPolicy); None = disabled
        self.bloom = bloom
        self.deleted = False

    @property
    def min_key(self) -> int:
        return self.keys[0]

    @property
    def max_key(self) -> int:
        return self.keys[-1]

    @property
    def entry_count(self) -> int:
        return len(self.keys)

    @property
    def data_bytes(self) -> int:
        """Live value bytes (excluding index and tombstones)."""
        return sum(s for s in self.sizes if s > 0)

    def covers(self, key: int) -> bool:
        """True if ``key`` falls inside this table's key range."""
        return self.min_key <= key <= self.max_key

    def overlaps(self, lo: int, hi: int) -> bool:
        """True if the table's range intersects [lo, hi]."""
        return self.min_key <= hi and lo <= self.max_key

    def find(self, key: int) -> Optional[int]:
        """Index of ``key`` in this table, or None."""
        i = bisect.bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return i
        return None

    # -- IO ---------------------------------------------------------------------

    def read_index_block(self, key: int, tag: IoTag) -> Event:
        """Read the 4 KiB index block that would cover ``key``.

        Charged whether or not the key exists — the cost of probing an
        eligible file.
        """
        i = bisect.bisect_left(self.keys, key)
        entry_offset = min(i, max(self.entry_count - 1, 0)) * INDEX_ENTRY_BYTES
        block_start = (entry_offset // BLOCK_SIZE) * BLOCK_SIZE
        length = min(BLOCK_SIZE, max(self.file.size - block_start, 1))
        return self.file.read(block_start, length, tag=tag)

    def range_indices(self, lo: int, hi: int) -> range:
        """Indices of entries with lo <= key <= hi."""
        first = bisect.bisect_left(self.keys, lo)
        last = bisect.bisect_right(self.keys, hi)
        return range(first, last)

    def read_range(self, lo: int, hi: int, tag: IoTag) -> Optional[Event]:
        """Sequentially read the span covering keys in [lo, hi].

        One index block plus the contiguous block-aligned data run — the
        IO a LevelDB iterator would issue over this table.  Returns None
        when the table holds no key in range.
        """
        indices = self.range_indices(lo, hi)
        if not indices:
            return None
        first, last = indices[0], indices[-1]
        start = (self.offsets[first] // BLOCK_SIZE) * BLOCK_SIZE
        end = self.offsets[last] + max(self.sizes[last], 1)
        aligned_end = min(
            ((end + BLOCK_SIZE - 1) // BLOCK_SIZE) * BLOCK_SIZE, self.file.size
        )
        return self.file.read(start, max(aligned_end - start, 1), tag=tag)

    def read_value(self, idx: int, tag: IoTag) -> Event:
        """Read the block-aligned span holding entry ``idx``'s value."""
        offset = self.offsets[idx]
        size = max(self.sizes[idx], 1)
        start = (offset // BLOCK_SIZE) * BLOCK_SIZE
        end = offset + size
        aligned_end = min(((end + BLOCK_SIZE - 1) // BLOCK_SIZE) * BLOCK_SIZE, self.file.size)
        return self.file.read(start, aligned_end - start, tag=tag)

    def __repr__(self) -> str:
        return (
            f"<SsTable #{self.table_id} [{self.min_key},{self.max_key}] "
            f"n={self.entry_count}>"
        )


class TableBuilder:
    """Builds an SSTable from sorted entries and writes it sequentially.

    The writer emits the file in large fixed-size chunks (the paper's
    modified LevelDB issues FLUSH IO "in an asynchronous, io-efficient
    manner" at a single IOP size regardless of object size).
    """

    def __init__(
        self,
        sim: Simulator,
        fs: SimFilesystem,
        write_chunk: int = 256 * 1024,
        bloom_bits_per_key: int = 0,
    ):
        self.sim = sim
        self.fs = fs
        self.write_chunk = write_chunk
        self.bloom_bits_per_key = bloom_bits_per_key

    def build(
        self,
        entries: Iterable[Tuple[int, int]],
        tag: IoTag,
        name: Optional[str] = None,
    ):
        """DES process: write (key, size) entries into a new SsTable.

        Yields IO events; returns the table.  ``size`` may be TOMBSTONE.
        Entries must be sorted by key and free of duplicates.
        """
        keys: List[int] = []
        sizes: List[int] = []
        offsets: List[int] = []
        pos = 0
        for key, size in entries:
            keys.append(key)
            sizes.append(size)
            offsets.append(pos)
            pos += max(size, 0)
        if not keys:
            raise ValueError("cannot build an empty SSTable")
        index_bytes = len(keys) * INDEX_ENTRY_BYTES
        # Index blocks padded to block size, then the data.
        index_region = ((index_bytes + BLOCK_SIZE - 1) // BLOCK_SIZE) * BLOCK_SIZE
        total = index_region + pos
        file = self.fs.create(name)
        try:
            remaining = max(total, BLOCK_SIZE)
            while remaining > 0:
                chunk = min(self.write_chunk, remaining)
                yield file.append(chunk, tag=tag)
                remaining -= chunk
        except BaseException:
            # A failed (or interrupted) build must not leak the partial
            # file: delete it so the extents return to the allocator and
            # the caller can retry under the same name.
            self.fs.delete(file)
            raise
        offsets = [index_region + o for o in offsets]
        bloom = None
        if self.bloom_bits_per_key > 0:
            bloom = BloomFilter(keys, self.bloom_bits_per_key, salt=SsTable._ids + 1)
        return SsTable(file, keys, sizes, offsets, index_bytes, bloom=bloom)
