"""The LSM key-value persistence engine.

One ``LsmEngine`` instance manages one tenant's partition: a memtable +
WAL in front of a leveled tree of SSTables, with FLUSH and COMPACT
running as parallel background DES processes (the paper's modified
LevelDB runs them in parallel too).  All IO goes through the
filesystem, whose backend is the Libra scheduler, tagged with
(tenant, app-request, internal op).

Engine methods are written as generators to be driven inside the
caller's DES process::

    size = yield from engine.get(key)
    yield from engine.put(key, size)

GET path: memtable → immutable memtable → eligible SSTables newest
first, paying one index-block read per probed file and a data read on
the hit.  PUT path: group-committed WAL append, memtable insert,
rotation + background FLUSH when full (stalling writers only when a
flush is already behind, as LevelDB does).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.tags import InternalOp, IoTag, RequestClass
from ..core.tracker import ResourceTracker
from ..faults import CorruptionError, StorageFault
from ..sim import Event, Simulator
from ..ssd import SimFilesystem
from .compaction import merge_entries, pick_compaction, split_outputs
from .memtable import TOMBSTONE, Memtable
from .sstable import SsTable, TableBuilder
from .version import Version
from .wal import Wal

__all__ = ["EngineConfig", "EngineStats", "LsmEngine"]

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class EngineConfig:
    """LSM tuning knobs (LevelDB-flavoured defaults, scaled to the
    simulated device size)."""

    memtable_bytes: int = 2 * MIB
    l0_trigger: int = 4
    #: writers stop until compaction catches up at this many L0 files
    #: (LevelDB's kL0_StopWritesTrigger)
    l0_stop: int = 12
    level1_bytes: int = 8 * MIB
    level_ratio: int = 8
    max_levels: int = 5
    max_output_file_bytes: int = 2 * MIB
    #: sequential IO chunk for FLUSH writes and COMPACT reads/writes
    io_chunk: int = 256 * KIB
    #: per-record WAL framing overhead (key + header)
    record_overhead: int = 24
    #: tables whose index blocks stay cached in memory (LevelDB's table
    #: cache / max_open_files).  A GET pays an index-block read only on
    #: the first probe of an uncached table — so write-heavy workloads,
    #: which churn fresh L0 files, re-pay index reads constantly while
    #: stable trees probe from memory (§3.1's GET amplification).
    table_cache_entries: int = 8
    #: Bloom filter bits per key (0 = off, matching the paper's
    #: prototype).  With filters on, a GET skips eligible files whose
    #: filter reports "absent" — buying back GET amplification at the
    #: cost of filter memory (see bench_ablation_bloom).
    bloom_bits_per_key: int = 0
    #: re-reads the engine attempts when a checksummed block read comes
    #: back corrupt, before surfacing the CorruptionError
    read_retries: int = 2
    #: initial backoff before retrying a FLUSH/COMPACT that hit a
    #: device fault (doubles per attempt; background work must outlast
    #: transient fault windows rather than die)
    fault_retry_backoff: float = 0.05


@dataclass
class EngineStats:
    """Cumulative engine activity counters."""

    gets: int = 0
    get_hits: int = 0
    get_misses: int = 0
    puts: int = 0
    deletes: int = 0
    flushes: int = 0
    compactions: int = 0
    compaction_input_bytes: int = 0
    index_probes: int = 0
    index_cache_hits: int = 0
    bloom_skips: int = 0
    put_stalls: int = 0
    recoveries: int = 0
    recovered_records: int = 0
    scans: int = 0
    scanned_entries: int = 0
    # Failure handling (see repro.faults)
    checksum_failures: int = 0
    read_retries: int = 0
    torn_records: int = 0
    flush_retries: int = 0
    compaction_aborts: int = 0

    def snapshot(self) -> "EngineStats":
        return EngineStats(**vars(self))

    def delta(self, earlier: "EngineStats") -> "EngineStats":
        return EngineStats(
            **{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)}
        )


class LsmEngine:
    """One tenant's log-structured merge tree over the shared device."""

    def __init__(
        self,
        sim: Simulator,
        fs: SimFilesystem,
        tenant: str,
        config: Optional[EngineConfig] = None,
        tracker: Optional[ResourceTracker] = None,
        tracer=None,
    ):
        self.sim = sim
        self.fs = fs
        self.tenant = tenant
        self.config = config or EngineConfig()
        self.tracker = tracker
        #: optional repro.obs Tracer for WAL/SSTable/flush/compact spans
        self.tracer = tracer
        self.stats = EngineStats()
        self.version = Version(max_levels=self.config.max_levels)
        self.memtable = Memtable(self.config.memtable_bytes)
        self.immutable: Optional[Memtable] = None
        self._wal = Wal(sim, fs, f"{tenant}-wal-0", tracer=tracer)
        self._wal_seq = 0
        #: engine-lifetime WAL commit listeners (re-attached on rotation)
        self._wal_listeners: List = []
        self._sequence = 0
        self._flush_done: Event = sim.event()
        self._compact_done: Event = sim.event()
        self._compacting = False
        self._file_seq = 0
        self._refs: Dict[int, int] = {}  # table_id -> active readers
        self._doomed: Dict[int, SsTable] = {}  # awaiting last reader
        #: LRU of table ids whose index blocks are resident in memory
        self._index_cache: "OrderedDict[int, None]" = OrderedDict()
        self._builder = TableBuilder(
            sim,
            fs,
            write_chunk=self.config.io_chunk,
            bloom_bits_per_key=self.config.bloom_bits_per_key,
        )

    # -- public request API (drive with ``yield from``) ---------------------------

    def get(self, key: int, tag: Optional[IoTag] = None):
        """Point lookup; returns the object size or None."""
        tag = tag or IoTag(self.tenant, RequestClass.GET)
        self.stats.gets += 1
        for table in (self.memtable, self.immutable):
            if table is not None:
                entry = table.get(key)
                if entry is not None:
                    return self._hit_or_miss(entry.size)
        candidates = list(self.version.eligible_files(key))
        for table in candidates:
            self._ref(table)
        try:
            for table in candidates:
                if table.bloom is not None and not table.bloom.may_contain(key):
                    self.stats.bloom_skips += 1
                    continue
                self.stats.index_probes += 1
                if self._index_cache_hit(table):
                    self.stats.index_cache_hits += 1
                else:
                    yield from self._read_verified(
                        lambda: table.read_index_block(key, tag),
                        span="sst.index", tag=tag,
                    )
                idx = table.find(key)
                if idx is not None:
                    size = table.sizes[idx]
                    if size == TOMBSTONE:
                        return self._hit_or_miss(TOMBSTONE)
                    yield from self._read_verified(
                        lambda: table.read_value(idx, tag),
                        span="sst.value", tag=tag,
                    )
                    return self._hit_or_miss(size)
        finally:
            for table in candidates:
                self._unref(table)
        return self._hit_or_miss(None)

    def put(self, key: int, size: int, tag: Optional[IoTag] = None):
        """Durable write of ``size`` bytes under ``key``."""
        if size <= 0:
            raise ValueError(f"object size must be positive, got {size}")
        tag = tag or IoTag(self.tenant, RequestClass.PUT)
        self.stats.puts += 1
        yield from self._write(key, size, tag)

    def delete(self, key: int, tag: Optional[IoTag] = None):
        """Durable tombstone write for ``key``."""
        tag = tag or IoTag(self.tenant, RequestClass.DELETE)
        self.stats.deletes += 1
        yield from self._write(key, TOMBSTONE, tag)

    def scan(self, lo: int, hi: int, tag: Optional[IoTag] = None, limit: Optional[int] = None):
        """Range scan: sorted live (key, size) pairs with lo <= key <= hi.

        Merges every overlapping source — both memtables and all
        overlapping tables at every level — newest version winning,
        tombstones suppressing older values.  Each overlapping table
        costs one sequential read of the covered data span (what a
        LevelDB iterator pays).
        """
        if lo > hi:
            raise ValueError(f"scan range [{lo}, {hi}] is empty")
        tag = tag or IoTag(self.tenant, RequestClass.GET)
        self.stats.scans += 1
        merged: Dict[int, int] = {}
        # Oldest sources first so newer layers overwrite.
        tables: List[SsTable] = []
        for level in range(self.version.max_levels - 1, 0, -1):
            tables.extend(self.version.overlapping(level, lo, hi))
        tables.extend(reversed(self.version.overlapping(0, lo, hi)))
        for table in tables:
            self._ref(table)
        try:
            for table in tables:
                yield from self._read_verified(
                    lambda: table.read_range(lo, hi, tag),
                    span="sst.range", tag=tag,
                )
                for idx in table.range_indices(lo, hi):
                    merged[table.keys[idx]] = table.sizes[idx]
        finally:
            for table in tables:
                self._unref(table)
        for source in (self.immutable, self.memtable):
            if source is None:
                continue
            for key, entry in source.sorted_entries():
                if lo <= key <= hi:
                    merged[key] = entry.size
        results = [
            (key, size)
            for key, size in sorted(merged.items())
            if size != TOMBSTONE
        ]
        if limit is not None:
            results = results[:limit]
        self.stats.scanned_entries += len(results)
        return results

    # -- read verification ---------------------------------------------------------

    def _read_verified(self, make_read, span=None, tag=None):
        """DES sub-generator: a block read with checksum verification.

        Every SSTable block carries a checksum (as LevelDB's per-block
        CRC32 does); a read that fails verification surfaces as
        :class:`CorruptionError`, which a bounded number of re-reads can
        clear when the corruption was transient (ECC/transport).  The
        factory returns a fresh read event per attempt, or None when
        the source holds nothing to read.  With a tracer installed,
        ``span`` names the recorded interval (retries included).
        """
        tr = self.tracer
        t0 = self.sim.now if tr is not None and tr.enabled and span is not None else 0.0
        attempts = 0
        while True:
            event = make_read()
            if event is None:
                return
            try:
                yield event
                if tr is not None and tr.enabled and span is not None:
                    tr.span(
                        span, "engine", f"engine.{self.tenant}",
                        tag.request.value if tag is not None else "read",
                        t0, self.sim.now,
                        trace=tag.trace if tag is not None else None,
                    )
                return
            except CorruptionError:
                self.stats.checksum_failures += 1
                if attempts >= self.config.read_retries:
                    raise
                attempts += 1
                self.stats.read_retries += 1

    # -- introspection -----------------------------------------------------------

    @property
    def wal(self) -> Wal:
        """The live write-ahead log (chaos scripts probe ``wal.busy``)."""
        return self._wal

    def subscribe_wal(self, listener) -> None:
        """Register ``listener(records)`` on durable WAL commit batches.

        Survives WAL rotation: the engine re-subscribes the listener on
        every fresh log, so the replication layer observes the durable
        record stream continuously.
        """
        self._wal_listeners.append(listener)
        self._wal.subscribe(listener)

    def eligible_count(self, key: int) -> int:
        """Files a GET for ``key`` would probe right now (diagnostics)."""
        return self.version.eligible_count(key)

    @property
    def live_bytes(self) -> int:
        """Approximate live data across memtables and all levels."""
        total = self.memtable.bytes + (self.immutable.bytes if self.immutable else 0)
        return total + sum(
            self.version.level_bytes(level) for level in range(self.version.max_levels)
        )

    # -- write path ---------------------------------------------------------------

    def _write(self, key: int, size: int, tag: IoTag):
        # LevelDB-style backpressure: stall when the memtable is full
        # with the previous one still flushing, or when L0 is so deep
        # that compaction must catch up first (kL0_StopWritesTrigger).
        while (self.memtable.full and self.immutable is not None) or (
            len(self.version.levels[0]) >= self.config.l0_stop
        ):
            self.stats.put_stalls += 1
            if len(self.version.levels[0]) >= self.config.l0_stop:
                self._maybe_compact()
                yield self._compact_done
            else:
                yield self._flush_done
        record = max(size, 0) + self.config.record_overhead
        yield self._wal.append(record, tag, record=(key, size))
        self._sequence += 1
        self.memtable.put(key, size, self._sequence)
        if self.memtable.full and self.immutable is None:
            self._rotate(tag)

    def _rotate(self, trigger_tag: IoTag) -> None:
        """Swap in a fresh memtable+WAL and start the background FLUSH.

        ``trigger_tag`` is the request whose write filled the memtable;
        the flush it spawns is traced as that request's child span.
        """
        self.immutable = self.memtable
        immutable_wal = self._wal
        self.memtable = Memtable(self.config.memtable_bytes)
        self._wal_seq += 1
        self._wal = Wal(
            self.sim, self.fs, f"{self.tenant}-wal-{self._wal_seq}", tracer=self.tracer
        )
        for listener in self._wal_listeners:
            self._wal.subscribe(listener)
        if self.tracker is not None:
            self.tracker.note_trigger(self.tenant, RequestClass.PUT, InternalOp.FLUSH)
        self.sim.process(
            self._flush(self.immutable, immutable_wal, trigger_trace=trigger_tag.trace),
            name=f"{self.tenant}.flush",
        )

    def _flush(self, memtable: Memtable, old_wal: Wal, trigger_trace=None):
        tag = IoTag(self.tenant, RequestClass.PUT, InternalOp.FLUSH, trigger_trace)
        t0 = self.sim.now
        delay = self.config.fault_retry_backoff
        while True:
            # A fresh entries generator per attempt: a faulted build
            # consumes the previous one (and cleans up its partial file).
            try:
                table = yield from self._builder.build(
                    ((key, entry.size) for key, entry in memtable.sorted_entries()),
                    tag,
                    name=self._next_file_name(),
                )
                break
            except StorageFault:
                # The memtable (and its WAL) stay live until the table
                # lands, so a flush must outlast transient device
                # faults — back off and rebuild.
                self.stats.flush_retries += 1
                yield self.sim.timeout(delay)
                delay = min(delay * 2, 1.0)
        self.version.add_l0(table)
        # Wait out any group commit still landing in the old log before
        # deleting it (a concurrent PUT may have appended there moments
        # before the rotation).
        yield old_wal.quiesced()
        old_wal.retire()
        self.immutable = None
        self.stats.flushes += 1
        if self.tracker is not None:
            self.tracker.note_internal_op(self.tenant, InternalOp.FLUSH)
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.span(
                "flush", "engine", f"engine.{self.tenant}", "flush",
                t0, self.sim.now, trace=trigger_trace,
                args={"bytes": memtable.bytes, "entries": len(memtable)},
            )
        done, self._flush_done = self._flush_done, self.sim.event()
        done.succeed()
        self._maybe_compact()

    # -- crash recovery ------------------------------------------------------------

    def crash(self) -> int:
        """Simulate a process crash, instantly (no IO).

        Volatile state is gone: the live memtable is dropped and the
        live WAL's tail is torn — queued and in-flight group commits
        are discarded, failing their (never-acknowledged) waiters with
        :class:`~repro.faults.CrashError` so callers re-issue.  Durable
        state (acknowledged WAL records, SSTables) is untouched.
        Returns the number of torn (unacknowledged) records.
        """
        torn = self._wal.crash()
        self.stats.torn_records += torn
        self.memtable = Memtable(self.config.memtable_bytes)
        return torn

    def recover(self, tag: Optional[IoTag] = None):
        """DES generator: rebuild volatile state from the WAL after a crash.

        The engine quiesces an in-flight FLUSH first: its memtable is
        already durable in the immutable WAL and the flush completes it
        to an SSTable, which recovery keeps (LevelDB recovers any log
        whose table did not land; completing the flush is equivalent
        and avoids tearing a half-written table out of the DES).  Then
        the live WAL is scanned sequentially (real read IO, tagged as
        PUT recovery work) and its durable records — exactly the
        acknowledged writes; the torn tail has no committed checksums —
        are replayed into a fresh memtable.

        Returns the number of replayed records.  Device faults during
        the scan propagate; the storage node retries recovery.
        """
        tag = tag or IoTag(self.tenant, RequestClass.PUT)
        while self.immutable is not None:
            yield self._flush_done
        self.memtable = Memtable(self.config.memtable_bytes)
        records = yield from self._wal.scan(
            tag, read_retries=self.config.read_retries + 2
        )
        for key, size in records:
            self._sequence += 1
            self.memtable.put(key, size, self._sequence)
        self.stats.recoveries += 1
        self.stats.recovered_records += len(records)
        if self.memtable.full and self.immutable is None:
            self._rotate(tag)
        return len(records)

    def crash_and_recover(self, tag: Optional[IoTag] = None):
        """DES generator: :meth:`crash` then :meth:`recover` back-to-back."""
        self.crash()
        replayed = yield from self.recover(tag)
        return replayed

    # -- compaction -----------------------------------------------------------------

    def _maybe_compact(self) -> None:
        if self._compacting:
            return
        job = pick_compaction(
            self.version,
            l0_trigger=self.config.l0_trigger,
            level1_bytes=self.config.level1_bytes,
            level_ratio=self.config.level_ratio,
        )
        if job is None:
            return
        self._compacting = True
        if self.tracker is not None:
            self.tracker.note_trigger(self.tenant, RequestClass.PUT, InternalOp.COMPACT)
        self.sim.process(self._compact(job), name=f"{self.tenant}.compact")

    def _compact(self, job):
        tag = IoTag(self.tenant, RequestClass.PUT, InternalOp.COMPACT)
        t0 = self.sim.now
        aborted = False
        outputs: List[SsTable] = []
        try:
            try:
                # Sequentially read every input file.
                for table in job.inputs:
                    pos = 0
                    while pos < table.file.size:
                        chunk = min(self.config.io_chunk, table.file.size - pos)
                        yield table.file.read(pos, chunk, tag=tag)
                        pos += chunk
                    self.stats.compaction_input_bytes += table.file.size
                drop_tombstones = job.target_level >= self.version.max_levels - 1
                merged = merge_entries(job.inputs, drop_tombstones=drop_tombstones)
                for batch in split_outputs(merged, self.config.max_output_file_bytes):
                    table = yield from self._builder.build(
                        iter(batch), tag, name=self._next_file_name()
                    )
                    outputs.append(table)
                self.version.remove(job.inputs)
                self.version.install(job.target_level, outputs)
                for table in job.inputs:
                    self._doom(table)
                self.stats.compactions += 1
                if self.tracker is not None:
                    self.tracker.note_internal_op(self.tenant, InternalOp.COMPACT)
            except StorageFault:
                # Abort cleanly: inputs stay installed, finished outputs
                # are deleted, and the job is retried after a backoff
                # (compaction is idempotent — nothing was published).
                aborted = True
                self.stats.compaction_aborts += 1
                for table in outputs:
                    self.fs.delete(table.file)
        finally:
            self._compacting = False
            tr = self.tracer
            if tr is not None and tr.enabled:
                tr.span(
                    "compact", "engine", f"engine.{self.tenant}", "compact",
                    t0, self.sim.now,
                    args={
                        "inputs": len(job.inputs),
                        "outputs": len(outputs),
                        "level": job.target_level,
                        "ok": not aborted,
                    },
                )
            done, self._compact_done = self._compact_done, self.sim.event()
            done.succeed()
        if aborted:
            self.sim.process(
                self._compact_retry_later(), name=f"{self.tenant}.compact-retry"
            )
        else:
            self._maybe_compact()

    def _compact_retry_later(self):
        """Re-attempt compaction after a faulted job backed off."""
        yield self.sim.timeout(self.config.fault_retry_backoff)
        self._maybe_compact()

    def _next_file_name(self) -> str:
        self._file_seq += 1
        return f"{self.tenant}-sst-{self._file_seq}"

    def _index_cache_hit(self, table: SsTable) -> bool:
        """Check/update the table cache; True if the index is resident."""
        if table.table_id in self._index_cache:
            self._index_cache.move_to_end(table.table_id)
            return True
        self._index_cache[table.table_id] = None
        while len(self._index_cache) > self.config.table_cache_entries:
            self._index_cache.popitem(last=False)
        return False

    # -- table lifetime (readers vs compaction) -----------------------------------------

    def _ref(self, table: SsTable) -> None:
        self._refs[table.table_id] = self._refs.get(table.table_id, 0) + 1

    def _unref(self, table: SsTable) -> None:
        remaining = self._refs.get(table.table_id, 0) - 1
        if remaining <= 0:
            self._refs.pop(table.table_id, None)
            doomed = self._doomed.pop(table.table_id, None)
            if doomed is not None:
                self.fs.delete(doomed.file)
        else:
            self._refs[table.table_id] = remaining

    def _doom(self, table: SsTable) -> None:
        """Delete a compacted-away table once no GET is reading it."""
        self._index_cache.pop(table.table_id, None)
        if self._refs.get(table.table_id, 0) > 0:
            self._doomed[table.table_id] = table
        else:
            self.fs.delete(table.file)

    def _hit_or_miss(self, size: Optional[int]):
        if size is None or size == TOMBSTONE:
            self.stats.get_misses += 1
            return None
        self.stats.get_hits += 1
        return size
