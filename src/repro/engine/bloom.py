"""Per-table Bloom filters.

LevelDB grew optional Bloom filters (``FilterPolicy``) in the same era
as the paper; they cut exactly the GET amplification §3.1 describes —
an eligible file whose filter says "absent" costs no index-block read.
The engine leaves them **off by default** to match the paper's
prototype, and exposes them as an extension (see
``bench_ablation_bloom``) quantifying how much of the amplification
they buy back.

Simulation note: since no value bytes exist, the filter stores the
exact key set and synthesizes *deterministic* false positives at the
theoretical rate for the configured bits/key
(fp ≈ 0.6185^bits_per_key), seeded by (table id, key) so repeated
probes agree.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Set

__all__ = ["BloomFilter", "false_positive_rate"]


def false_positive_rate(bits_per_key: int) -> float:
    """Theoretical optimum-hash Bloom false-positive rate."""
    if bits_per_key <= 0:
        return 1.0
    return 0.6185 ** bits_per_key


class BloomFilter:
    """A simulated Bloom filter over a table's key set."""

    __slots__ = ("_keys", "fp_rate", "_salt", "bits_per_key")

    def __init__(self, keys: Iterable[int], bits_per_key: int, salt: int = 0):
        if bits_per_key <= 0:
            raise ValueError(f"bits_per_key must be positive, got {bits_per_key}")
        self._keys: Set[int] = set(keys)
        self.bits_per_key = bits_per_key
        self.fp_rate = false_positive_rate(bits_per_key)
        self._salt = salt

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def approximate_bytes(self) -> int:
        """In-memory footprint a real filter of this shape would have."""
        return (len(self._keys) * self.bits_per_key + 7) // 8

    def may_contain(self, key: int) -> bool:
        """True for every present key; false positives at ``fp_rate``.

        False positives are deterministic per (salt, key) so a repeated
        probe of the same table gives the same answer — as real filter
        bits would.
        """
        if key in self._keys:
            return True
        digest = hashlib.blake2b(
            f"{self._salt}:{key}".encode(), digest_size=8
        ).digest()
        draw = int.from_bytes(digest, "big") / float(1 << 64)
        return draw < self.fp_rate
