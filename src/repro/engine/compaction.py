"""Background compaction (COMPACT).

LSM engines never update in place; stale versions accumulate in L0 and
deeper levels until a compaction merges overlapping files, culls
overwritten keys and tombstones, and rewrites the survivors one level
down.  Compaction is the second big source of indirect IO in Fig 2 —
sequential reads of every input file plus sequential writes of the
merged outputs, all tagged COMPACT so Libra can bill them back to the
tenant's PUT profile.

Policy, following LevelDB: L0 compacts when it holds too many files
(every L0 file is a mandatory GET probe); L1+ compact when a level
exceeds its size budget (``level1_bytes`` × ratio^(level-1)), picking
files round-robin and merging them with the overlapping files below.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from .memtable import TOMBSTONE
from .sstable import SsTable
from .version import Version

__all__ = ["CompactionJob", "pick_compaction", "merge_entries", "split_outputs"]


class CompactionJob:
    """Inputs and target level for one compaction run."""

    def __init__(self, level: int, inputs: List[SsTable], target_level: int):
        if not inputs:
            raise ValueError("compaction with no inputs")
        self.level = level
        self.inputs = inputs
        self.target_level = target_level

    @property
    def input_bytes(self) -> int:
        """File bytes to be read (index + data of every input)."""
        return sum(t.file.size for t in self.inputs)

    def __repr__(self) -> str:
        return (
            f"<CompactionJob L{self.level}->L{self.target_level} "
            f"{len(self.inputs)} files, {self.input_bytes} B>"
        )


def pick_compaction(
    version: Version,
    l0_trigger: int,
    level1_bytes: int,
    level_ratio: int,
) -> Optional[CompactionJob]:
    """Choose the most urgent compaction, if any.

    L0 crowding beats size overflow because every extra L0 file
    directly amplifies GETs.
    """
    if len(version.levels[0]) >= l0_trigger:
        inputs = list(version.levels[0])
        lo = min(t.min_key for t in inputs)
        hi = max(t.max_key for t in inputs)
        inputs += version.overlapping(1, lo, hi)
        return CompactionJob(level=0, inputs=inputs, target_level=1)
    budget = level1_bytes
    for level in range(1, version.max_levels - 1):
        if version.level_bytes(level) > budget:
            # Round-robin-ish: take the widest file to maximize culling.
            seed = max(version.levels[level], key=lambda t: t.file.size)
            inputs = [seed] + version.overlapping(
                level + 1, seed.min_key, seed.max_key
            )
            return CompactionJob(level=level, inputs=inputs, target_level=level + 1)
        budget *= level_ratio
    return None


def merge_entries(
    inputs: List[SsTable], drop_tombstones: bool
) -> Iterator[Tuple[int, int]]:
    """Merge inputs, newest version of each key winning.

    ``inputs`` must be ordered newest-first (the L0 list order already
    is; deeper levels are older than everything above them).
    """
    newest = {}
    for table in inputs:
        for key, size in zip(table.keys, table.sizes):
            if key not in newest:
                newest[key] = size
    for key in sorted(newest):
        size = newest[key]
        if drop_tombstones and size == TOMBSTONE:
            continue
        yield key, size


def split_outputs(
    entries: Iterator[Tuple[int, int]], max_file_bytes: int
) -> Iterator[List[Tuple[int, int]]]:
    """Partition merged entries into output files of bounded size."""
    batch: List[Tuple[int, int]] = []
    batch_bytes = 0
    for key, size in entries:
        batch.append((key, size))
        batch_bytes += max(size, 0)
        if batch_bytes >= max_file_bytes:
            yield batch
            batch = []
            batch_bytes = 0
    if batch:
        yield batch
