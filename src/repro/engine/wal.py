"""Write-ahead log with group commit, checksummed records, and torn tails.

Every PUT first lands in the append-only WAL (§3.1) as a synchronous
write — the paper's prototype issues these with O_SYNC/O_DIRECT and
parallel client writers.  Concurrent appends are *group committed*:
while one WAL write is in flight, arriving records accumulate and are
flushed together in a single larger write, which is what keeps small
PUTs from paying a full device round-trip each.

WAL appends are the "PUT write IO" component of Fig 2: small records
make sub-page tail writes whose cost-per-byte is high.

Failure handling: records carry checksums (modeled, like SSTable
blocks, as the mechanism that converts torn or corrupt bytes into
detectable invalidity rather than as payload math).  A group commit
whose device write fails drops the whole batch — each waiter's append
event fails with the device error, and the half-written bytes are a
dead region the recovery scan skips because no checksummed record
header commits them.  :meth:`crash` tears the tail: in-flight and
queued records are discarded and their (never-acknowledged) waiters
fail with :class:`~repro.faults.CrashError`, so callers re-issue —
acknowledged records are exactly the ``entries`` list and survive.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.tags import IoTag
from ..faults import CorruptionError, CrashError, DeviceError, StorageFault
from ..sim import Event, Process, Simulator
from ..ssd import SimFile, SimFilesystem

__all__ = ["Wal"]


class Wal:
    """One tenant memtable's write-ahead log file."""

    def __init__(self, sim: Simulator, fs: SimFilesystem, name: str, tracer=None):
        self.sim = sim
        self.fs = fs
        #: optional repro.obs Tracer recording one span per group commit
        self.tracer = tracer
        self.file: SimFile = fs.create(name)
        self._pending: List[Tuple[int, Event, Optional[Tuple[int, int]]]] = []
        self._inflight: List[Tuple[int, Event, Optional[Tuple[int, int]]]] = []
        self._committing = False
        self._commit_proc: Optional[Process] = None
        self.records = 0
        self.batches = 0
        self.failed_batches = 0
        self.torn_records = 0
        #: bytes appended for batches that failed or were torn — dead
        #: regions whose record checksums never commit them
        self.torn_bytes = 0
        #: *durable* (key, size) records in commit order — exactly what
        #: a crash-recovery scan of this log reconstructs; records whose
        #: group commit has not completed are not yet in here
        self.entries: List[Tuple[int, int]] = []
        self._drain_waiters: List[Event] = []
        #: commit listeners: called with the batch's durable (key, size)
        #: records the moment their group commit lands — the shipping
        #: point primary-backup replication hangs off (a record is
        #: eligible for acknowledgement and for replication bookkeeping
        #: exactly when it is durable here, never earlier)
        self._commit_listeners: List = []

    def subscribe(self, listener) -> None:
        """Register ``listener(records)`` for durable commit batches.

        ``records`` is the list of logical (key, size) payloads whose
        group commit just landed (opaque appends excluded).  Listeners
        run synchronously at the commit point, before the waiters'
        acknowledgement events fire.
        """
        self._commit_listeners.append(listener)

    @property
    def size(self) -> int:
        """Bytes durably appended so far."""
        return self.file.size

    @property
    def busy(self) -> bool:
        """True while a group commit is queued or in flight."""
        return self._committing or bool(self._pending)

    def append(
        self, nbytes: int, tag: IoTag, record: Optional[Tuple[int, int]] = None
    ) -> Event:
        """Durably append a record; the event fires once it is on disk.

        ``record`` is the logical (key, size) payload retained for crash
        recovery; pass None for opaque appends.  The event *fails* (with
        a device error or :class:`CrashError`) when the record's group
        commit does not land — the caller was never acknowledged and
        must re-issue.
        """
        if nbytes <= 0:
            raise ValueError(f"record size must be positive, got {nbytes}")
        done = self.sim.event()
        self._pending.append((nbytes, done, record))
        self.records += 1
        if not self._committing:
            self._committing = True
            self._commit_proc = self.sim.process(
                self._commit_loop(tag), name=f"wal.{self.file.name}"
            )
        return done

    def _commit_loop(self, tag: IoTag):
        try:
            while self._pending:
                batch, self._pending = self._pending, []
                self._inflight = batch
                total = sum(nbytes for nbytes, _ev, _rec in batch)
                self.batches += 1
                tr = self.tracer
                t0 = self.sim.now if tr is not None and tr.enabled else 0.0
                try:
                    yield self.file.append(total, tag=tag)
                except StorageFault as exc:
                    if tr is not None and tr.enabled:
                        # Group-commit attribution is approximate: the
                        # batch serves every waiter but carries the tag
                        # (and trace id) of the append that started it.
                        tr.span(
                            "wal.commit", "engine", f"engine.{tag.tenant}", "wal",
                            t0, self.sim.now, trace=tag.trace,
                            args={"records": len(batch), "bytes": total, "ok": False},
                        )
                    # The group write failed: the batch's bytes are a
                    # torn region; fail every waiter so they re-issue.
                    self.failed_batches += 1
                    self.torn_bytes += total
                    self._inflight = []
                    for _nbytes, ev, _record in batch:
                        if not ev.triggered:
                            ev.fail(exc)
                    continue
                if tr is not None and tr.enabled:
                    tr.span(
                        "wal.commit", "engine", f"engine.{tag.tenant}", "wal",
                        t0, self.sim.now, trace=tag.trace,
                        args={"records": len(batch), "bytes": total, "ok": True},
                    )
                self._inflight = []
                committed = [rec for _nbytes, _ev, rec in batch if rec is not None]
                if committed and self._commit_listeners:
                    for listener in self._commit_listeners:
                        listener(committed)
                for _nbytes, ev, record in batch:
                    if record is not None:
                        self.entries.append(record)
                    ev.succeed()
        finally:
            self._committing = False
            self._commit_proc = None
            if not self._pending:
                waiters, self._drain_waiters = self._drain_waiters, []
                for waiter in waiters:
                    waiter.succeed()

    def crash(self) -> int:
        """Tear the log tail as a process crash would; return records lost.

        The in-flight group commit (if any) and every queued record are
        discarded: their bytes either never reached the device or form a
        torn region with no committed checksum, and their waiters —
        none of whom were acknowledged — fail with :class:`CrashError`.
        Durable ``entries`` are untouched.
        """
        torn = self._inflight + self._pending
        self._inflight, self._pending = [], []
        if self._commit_proc is not None and self._commit_proc.is_alive:
            self._commit_proc.interrupt("wal crash")
        self._commit_proc = None
        self._committing = False
        exc = CrashError(f"wal {self.file.name}: crash tore {len(torn)} records")
        for nbytes, ev, _record in torn:
            self.torn_bytes += nbytes
            if not ev.triggered:
                ev.fail(exc)
        self.torn_records += len(torn)
        waiters, self._drain_waiters = self._drain_waiters, []
        for waiter in waiters:
            waiter.succeed()
        return len(torn)

    def quiesced(self) -> Event:
        """Event that fires once no group commit is pending or running.

        A memtable's WAL can still have a concurrent writer's record in
        flight when the FLUSH finishes building the SSTable; retiring
        must wait for that commit to land (the record is durable in
        *this* log even though its memtable entry went to the
        successor).
        """
        done = self.sim.event()
        if not self._pending and not self._committing:
            done.succeed()
        else:
            self._drain_waiters.append(done)
        return done

    def retire(self) -> None:
        """Delete the log file (its memtable has been flushed)."""
        if self._pending or self._committing:
            raise RuntimeError(f"retiring WAL {self.file.name} with writes in flight")
        self.fs.delete(self.file)
        self.entries = []

    def scan(self, tag: IoTag, chunk: int = 256 * 1024, read_retries: int = 4):
        """DES generator: sequentially read the whole log (recovery IO).

        Corrupt and transiently-failed reads are retried up to
        ``read_retries`` times *per chunk* (checksummed records make
        corruption detectable; a re-read clears transient ECC/transport
        faults) — chunk-level retry, not scan-level, so a long log
        recovering through a fault window does not restart from byte
        zero on every hiccup.  A chunk that stays unreadable propagates
        to the caller, which owns recovery-level retries.  Returns the
        durable (key, size) records — the torn tail, having no
        committed checksums, contributes read IO but no records.
        """
        pos = 0
        while pos < self.file.size:
            length = min(chunk, self.file.size - pos)
            attempts = 0
            while True:
                try:
                    yield self.file.read(pos, length, tag=tag)
                    break
                except (CorruptionError, DeviceError):
                    attempts += 1
                    if attempts > read_retries:
                        raise
            pos += length
        return list(self.entries)
