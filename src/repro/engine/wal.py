"""Write-ahead log with group commit.

Every PUT first lands in the append-only WAL (§3.1) as a synchronous
write — the paper's prototype issues these with O_SYNC/O_DIRECT and
parallel client writers.  Concurrent appends are *group committed*:
while one WAL write is in flight, arriving records accumulate and are
flushed together in a single larger write, which is what keeps small
PUTs from paying a full device round-trip each.

WAL appends are the "PUT write IO" component of Fig 2: small records
make sub-page tail writes whose cost-per-byte is high.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.tags import IoTag
from ..sim import Event, Simulator
from ..ssd import SimFile, SimFilesystem

__all__ = ["Wal"]


class Wal:
    """One tenant memtable's write-ahead log file."""

    def __init__(self, sim: Simulator, fs: SimFilesystem, name: str):
        self.sim = sim
        self.fs = fs
        self.file: SimFile = fs.create(name)
        self._pending: List[Tuple[int, Event, Optional[Tuple[int, int]]]] = []
        self._committing = False
        self.records = 0
        self.batches = 0
        #: *durable* (key, size) records in commit order — exactly what
        #: a crash-recovery scan of this log reconstructs; records whose
        #: group commit has not completed are not yet in here
        self.entries: List[Tuple[int, int]] = []
        self._drain_waiters: List[Event] = []

    @property
    def size(self) -> int:
        """Bytes durably appended so far."""
        return self.file.size

    def append(
        self, nbytes: int, tag: IoTag, record: Optional[Tuple[int, int]] = None
    ) -> Event:
        """Durably append a record; the event fires once it is on disk.

        ``record`` is the logical (key, size) payload retained for crash
        recovery; pass None for opaque appends.
        """
        if nbytes <= 0:
            raise ValueError(f"record size must be positive, got {nbytes}")
        done = self.sim.event()
        self._pending.append((nbytes, done, record))
        self.records += 1
        if not self._committing:
            self._committing = True
            self.sim.process(self._commit_loop(tag), name=f"wal.{self.file.name}")
        return done

    def _commit_loop(self, tag: IoTag):
        try:
            while self._pending:
                batch, self._pending = self._pending, []
                total = sum(nbytes for nbytes, _ev, _rec in batch)
                self.batches += 1
                yield self.file.append(total, tag=tag)
                for _nbytes, ev, record in batch:
                    if record is not None:
                        self.entries.append(record)
                    ev.succeed()
        finally:
            self._committing = False
            if not self._pending:
                waiters, self._drain_waiters = self._drain_waiters, []
                for waiter in waiters:
                    waiter.succeed()

    def quiesced(self) -> Event:
        """Event that fires once no group commit is pending or running.

        A memtable's WAL can still have a concurrent writer's record in
        flight when the FLUSH finishes building the SSTable; retiring
        must wait for that commit to land (the record is durable in
        *this* log even though its memtable entry went to the
        successor).
        """
        done = self.sim.event()
        if not self._pending and not self._committing:
            done.succeed()
        else:
            self._drain_waiters.append(done)
        return done

    def retire(self) -> None:
        """Delete the log file (its memtable has been flushed)."""
        if self._pending or self._committing:
            raise RuntimeError(f"retiring WAL {self.file.name} with writes in flight")
        self.fs.delete(self.file)
        self.entries = []

    def scan(self, tag: IoTag, chunk: int = 256 * 1024):
        """DES generator: sequentially read the whole log (recovery IO).

        Returns the durable (key, size) records.
        """
        pos = 0
        while pos < self.file.size:
            length = min(chunk, self.file.size - pos)
            yield self.file.read(pos, length, tag=tag)
            pos += length
        return list(self.entries)
