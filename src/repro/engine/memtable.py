"""In-memory write buffer.

Holds the newest version of each recently written key until the size
threshold rotates it out for a background FLUSH.  Entries store only
object metadata (size, tombstone) — the simulation never materializes
value bytes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Memtable", "Entry", "TOMBSTONE"]

#: sentinel size marking a deletion record
TOMBSTONE = -1


class Entry:
    """One key's newest buffered version."""

    __slots__ = ("size", "sequence")

    def __init__(self, size: int, sequence: int):
        self.size = size
        self.sequence = sequence

    @property
    def is_tombstone(self) -> bool:
        return self.size == TOMBSTONE


class Memtable:
    """A size-bounded write buffer with point lookup."""

    def __init__(self, limit_bytes: int):
        if limit_bytes <= 0:
            raise ValueError(f"memtable limit must be positive, got {limit_bytes}")
        self.limit_bytes = limit_bytes
        self._entries: Dict[int, Entry] = {}
        #: sorted key cache for the flush path; only a *new* key changes
        #: the key set, so overwrites keep it valid
        self._sorted_keys: Optional[List[int]] = None
        self.bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return self.bytes >= self.limit_bytes

    @property
    def empty(self) -> bool:
        return not self._entries

    def put(self, key: int, size: int, sequence: int) -> None:
        """Insert/overwrite a key (``size=TOMBSTONE`` records a delete)."""
        previous = self._entries.get(key)
        if previous is not None:
            self.bytes -= max(previous.size, 0)
        else:
            self._sorted_keys = None
        self._entries[key] = Entry(size, sequence)
        self.bytes += max(size, 0)

    def get(self, key: int) -> Optional[Entry]:
        """The buffered entry for ``key``, or None if absent."""
        return self._entries.get(key)

    def sorted_entries(self) -> Iterator[Tuple[int, Entry]]:
        """Entries in key order (for building an SSTable).

        The flush path iterates this twice (layout sizing, then the
        actual build); the sorted key list is cached between calls and
        invalidated only when a put introduces a new key.
        """
        keys = self._sorted_keys
        if keys is None:
            keys = self._sorted_keys = sorted(self._entries)
        entries = self._entries
        for key in keys:
            yield key, entries[key]
