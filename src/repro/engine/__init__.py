"""LSM-tree persistence engine (LevelDB-like) over the simulated SSD."""

from .bloom import BloomFilter, false_positive_rate
from .compaction import CompactionJob, merge_entries, pick_compaction, split_outputs
from .db import EngineConfig, EngineStats, LsmEngine
from .memtable import TOMBSTONE, Entry, Memtable
from .sstable import BLOCK_SIZE, INDEX_ENTRY_BYTES, SsTable, TableBuilder
from .version import Version
from .wal import Wal

__all__ = [
    "BLOCK_SIZE",
    "BloomFilter",
    "CompactionJob",
    "EngineConfig",
    "EngineStats",
    "Entry",
    "INDEX_ENTRY_BYTES",
    "LsmEngine",
    "Memtable",
    "SsTable",
    "TOMBSTONE",
    "TableBuilder",
    "Version",
    "Wal",
    "false_positive_rate",
    "merge_entries",
    "pick_compaction",
    "split_outputs",
]
