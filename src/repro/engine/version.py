"""Leveled file manifest.

Tracks which SSTables are live at each level, mirroring LevelDB:

- **L0** files come straight from memtable FLUSHes and may overlap each
  other, so a lookup must probe every L0 file whose range covers the
  key, newest first;
- **L1+** files are non-overlapping and sorted, so each level
  contributes at most one candidate.

The number of *eligible files* for a key — every one of which costs an
index-block read — is the engine-level source of GET amplification
(§3.1): write-heavy workloads grow L0 and widen ranges, inflating GET
cost until a COMPACT merges the files down.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional

from .sstable import SsTable

__all__ = ["Version"]


class Version:
    """Mutable view of the live file tree."""

    def __init__(self, max_levels: int = 5):
        if max_levels < 2:
            raise ValueError("need at least L0 and L1")
        self.levels: List[List[SsTable]] = [[] for _ in range(max_levels)]

    @property
    def max_levels(self) -> int:
        return len(self.levels)

    @property
    def file_count(self) -> int:
        return sum(len(level) for level in self.levels)

    def level_bytes(self, level: int) -> int:
        """Live data bytes at a level (compaction sizing input)."""
        return sum(t.data_bytes for t in self.levels[level])

    # -- mutation ---------------------------------------------------------------

    def add_l0(self, table: SsTable) -> None:
        """Install a freshly flushed table (newest first)."""
        self.levels[0].insert(0, table)

    def install(self, level: int, tables: List[SsTable]) -> None:
        """Add compaction outputs to ``level``, keeping sort order."""
        if level == 0:
            for t in reversed(tables):
                self.add_l0(t)
            return
        merged = self.levels[level] + tables
        merged.sort(key=lambda t: t.min_key)
        self.levels[level] = merged

    def remove(self, tables: List[SsTable]) -> None:
        """Drop tables (they were compacted away)."""
        doomed = {t.table_id for t in tables}
        for level in range(len(self.levels)):
            self.levels[level] = [
                t for t in self.levels[level] if t.table_id not in doomed
            ]

    # -- lookup ------------------------------------------------------------------

    def eligible_files(self, key: int) -> Iterator[SsTable]:
        """Candidate tables for a key, newest first.

        Every yielded table costs the caller an index-block probe.
        """
        for table in self.levels[0]:
            if table.covers(key):
                yield table
        for level in range(1, len(self.levels)):
            table = self._find_in_level(level, key)
            if table is not None:
                yield table

    def eligible_count(self, key: int) -> int:
        """How many files a GET for ``key`` may need to probe."""
        return sum(1 for _t in self.eligible_files(key))

    def _find_in_level(self, level: int, key: int) -> Optional[SsTable]:
        tables = self.levels[level]
        if not tables:
            return None
        i = bisect.bisect_right([t.min_key for t in tables], key) - 1
        if i >= 0 and tables[i].covers(key):
            return tables[i]
        return None

    def overlapping(self, level: int, lo: int, hi: int) -> List[SsTable]:
        """Tables at ``level`` intersecting [lo, hi] (compaction input)."""
        return [t for t in self.levels[level] if t.overlaps(lo, hi)]
