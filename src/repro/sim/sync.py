"""Synchronization primitives on simulated time.

The paper's user-space library implements coroutine-aware mutexes and
condition variables so that IO tasks blocked on engine-internal locks do
not stall the scheduler (§5).  These are the DES equivalents: acquiring a
held :class:`Mutex` suspends the calling process until the holder
releases it, all in simulated time.

All primitives are FIFO-fair and deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from .core import Event, Simulator, SimulationError

__all__ = ["Mutex", "Condition", "Semaphore"]


class Mutex:
    """A FIFO mutual-exclusion lock for simulated processes.

    Usage inside a process::

        yield mutex.acquire()
        try:
            ...critical section...
        finally:
            mutex.release()
    """

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        """True while some process holds the lock."""
        return self._locked

    def acquire(self) -> Event:
        """Return an event that triggers once the lock is held."""
        ev = self.sim.event()
        if not self._locked:
            self._locked = True
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Release the lock, waking the oldest waiter if any."""
        if not self._locked:
            raise SimulationError(f"release of unlocked {self.name}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._locked = False


class Condition:
    """A condition variable paired with a :class:`Mutex`.

    ``wait()`` atomically releases the mutex and suspends; on wake the
    mutex is re-acquired before the waiter resumes past the yield::

        yield mutex.acquire()
        while not predicate():
            yield cond.wait()
        ...
        mutex.release()
    """

    def __init__(self, sim: Simulator, mutex: Mutex, name: str = "cond"):
        self.sim = sim
        self.mutex = mutex
        self.name = name
        self._waiters: Deque[Event] = deque()

    def wait(self) -> Event:
        """Release the mutex and return an event that triggers on notify
        *and* once the mutex has been re-acquired."""
        if not self.mutex.locked:
            raise SimulationError(f"wait on {self.name} without holding mutex")
        done = self.sim.event()
        signalled = self.sim.event()
        self._waiters.append(signalled)

        def _on_signal(_ev: Event) -> None:
            reacquired = self.mutex.acquire()
            if reacquired.triggered:
                done.succeed()
            else:
                reacquired.callbacks.append(lambda _e: done.succeed())

        signalled.callbacks.append(_on_signal)
        self.mutex.release()
        return done

    def notify(self) -> None:
        """Wake the oldest waiter, if any."""
        if self._waiters:
            self._waiters.popleft().succeed()

    def notify_all(self) -> None:
        """Wake every current waiter."""
        waiters, self._waiters = self._waiters, deque()
        for ev in waiters:
            ev.succeed()


class Semaphore:
    """A counting semaphore with FIFO waiters.

    Used to model bounded resources such as the SSD's NCQ slots and the
    engine's background-work concurrency limits.
    """

    def __init__(self, sim: Simulator, value: int, name: str = "sem"):
        if value < 0:
            raise SimulationError(f"semaphore {name} initial value {value} < 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        """Currently available permits."""
        return self._value

    @property
    def waiting(self) -> int:
        """Number of processes queued for a permit."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that triggers once a permit is obtained."""
        ev = self.sim.event()
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._value > 0:
            self._value -= 1
            return True
        return False

    def release(self, count: int = 1) -> None:
        """Return ``count`` permits, waking waiters FIFO."""
        if count < 1:
            raise SimulationError("release count must be >= 1")
        for _ in range(count):
            if self._waiters:
                self._waiters.popleft().succeed()
            else:
                self._value += 1
