"""Queues and stores for inter-process pipelines.

The storage-node stack is a pipeline of DES processes (protocol layer →
engine workers → Libra scheduler threads → device).  These stores carry
requests between stages with optional capacity limits and FIFO
discipline.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, Simulator, SimulationError

__all__ = ["Store"]


class Store:
    """A FIFO buffer with optional bounded capacity.

    ``put(item)`` returns an event that triggers once the item has been
    accepted (immediately if there is room).  ``get()`` returns an event
    that triggers with the oldest item once one is available.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "store"):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store {name} capacity {capacity} < 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def pending_gets(self) -> int:
        """Number of consumers blocked on an empty store."""
        return len(self._getters)

    def put(self, item: Any) -> Event:
        """Offer an item; the returned event triggers on acceptance."""
        ev = self.sim.event()
        if self._getters:
            # Hand off directly to the oldest waiting consumer.
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Take the oldest item; the returned event carries it."""
        ev = self.sim.event()
        if self._items:
            item = self._items.popleft()
            ev.succeed(item)
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple:
        """Non-blocking get; returns (ok, item)."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def peek(self) -> Any:
        """Look at the oldest item without removing it (None if empty)."""
        return self._items[0] if self._items else None

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.succeed()
