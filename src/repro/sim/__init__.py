"""Discrete-event simulation kernel for the Libra reproduction.

All timing-sensitive components (SSD model, LSM engine background work,
the Libra scheduler) run as processes on this kernel in simulated time,
sidestepping Python interpreter overhead entirely.
"""

from .core import (
    OK_RESULT,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .fluid import SteadyStateMonitor, reason_stem
from .resources import Store
from .sync import Condition, Mutex, Semaphore

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "Interrupt",
    "Mutex",
    "Process",
    "OK_RESULT",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "SteadyStateMonitor",
    "reason_stem",
    "Store",
    "Timeout",
]
