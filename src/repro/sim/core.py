"""Discrete-event simulation kernel.

Everything in this reproduction runs in *simulated* time: the SSD device
model, the LSM engine's background FLUSH/COMPACT processes, and the Libra
scheduler itself.  The paper's user-space C library multiplexes tenant IO
tasks with coroutines; this kernel plays the same role using Python
generators as processes.  A process is a generator that yields
:class:`Event` objects and is resumed when the yielded event triggers.

The kernel is deterministic: events scheduled for the same timestamp fire
in schedule order (a monotonically increasing sequence number breaks
ties), so a given seed always produces the same trajectory.

Example
-------
>>> sim = Simulator()
>>> def hello(sim, log):
...     yield sim.timeout(5.0)
...     log.append(sim.now)
>>> log = []
>>> _ = sim.process(hello(sim, log))
>>> sim.run()
>>> log
[5.0]
"""

from __future__ import annotations

import heapq
from heapq import heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "Simulator",
    "SimulationError",
    "OK_RESULT",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (e.g. triggering an event twice)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies ``cause``, which the interrupted
    process can inspect to decide how to clean up.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


def _dispatch_event(event: "Event") -> None:
    """Run a triggered event's callbacks (the heap's dispatch action).

    Module-level (not a method) so trigger sites can push it into the
    heap without a per-call attribute lookup.
    """
    callbacks = event.callbacks
    event.callbacks = None
    if callbacks:
        for callback in callbacks:
            callback(event)


class Event:
    """A one-shot occurrence in simulated time.

    Events start untriggered.  Calling :meth:`succeed` or :meth:`fail`
    triggers them, after which their callbacks run (in the simulator
    loop, at the current simulated time).  Yielding an event from a
    process suspends that process until the event triggers.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception, if it failed)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        sim = self.sim
        sim._seq += 1
        heappush(sim._heap, (sim.now, sim._seq, _dispatch_event, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event will have the exception thrown
        into them at their yield point.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._seq += 1
        heappush(sim._heap, (sim.now, sim._seq, _dispatch_event, self))
        return self

    def __repr__(self) -> str:
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        # One Timeout is created per simulated wait, so the base
        # constructor and scheduling call are inlined here.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self.delay = delay
        sim._seq += 1
        heappush(sim._heap, (sim.now + delay, sim._seq, _dispatch_event, self))


class _InitialResume:
    """Shared stand-in for the event that kicks off a new process.

    ``Process._resume`` only reads ``_ok`` and ``_value`` from the event
    it is resumed with, so one immutable instance serves every process
    start (and every interrupt carries its own payload in a dedicated
    slot) — no throwaway :class:`Event` per spawned process.
    """

    __slots__ = ()
    _ok = True
    _value = None


_START = _InitialResume()


class _InterruptResume:
    """Failure payload carrier used to resume an interrupted process."""

    __slots__ = ("_value",)
    _ok = False

    def __init__(self, value: Interrupt):
        self._value = value


class _OkResult:
    """Shared stand-in for a successful completion with no payload.

    Completion consumers only read ``ok`` and ``value`` (plus the
    ``triggered``/``processed`` flags), so one immutable instance serves
    every fast-path completion — no throwaway :class:`Event` per IO.
    """

    __slots__ = ()
    ok = True
    value = None
    triggered = True
    processed = True


#: the one reusable "it worked" completion (see :class:`_OkResult`)
OK_RESULT = _OkResult()


class Process(Event):
    """A running generator, driven by the events it yields.

    The process is itself an event: it triggers when the generator
    returns (succeeding with the return value) or raises (failing with
    the exception).  This is what makes ``result = yield sim.process(...)``
    and process joining work.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        self.sim = sim
        self.callbacks = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process at the current time.
        sim._seq += 1
        heappush(sim._heap, (sim.now, sim._seq, self._resume, _START))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A finished process cannot be interrupted; doing so raises
        :class:`SimulationError` to surface the race to the caller.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waiting = self._waiting_on
        if waiting is not None and not waiting.processed:
            # Detach from the event we were waiting on so its eventual
            # trigger does not resume us a second time.
            if waiting.callbacks is not None and self._resume in waiting.callbacks:
                waiting.callbacks.remove(self._resume)
        self._waiting_on = None
        self.sim._schedule_call(self._resume, _InterruptResume(Interrupt(cause)))

    # -- internals ---------------------------------------------------------

    def _resume(self, event) -> None:
        if self._triggered:  # interrupted after completion race; drop
            return
        send = self._generator.send
        throw = self._generator.throw
        while True:
            self._waiting_on = None
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    target = throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - process died
                self.fail(exc)
                return
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
                try:
                    throw(exc)
                except BaseException as err:  # noqa: BLE001
                    self.fail(err)
                return
            if target.callbacks is not None:
                # Pending (or triggered but not yet dispatched): park on
                # the event's callback list and wait for the loop.
                self._waiting_on = target
                target.callbacks.append(self._resume)
                return
            # Fast path: the yielded event is already processed, so its
            # value is final — resume directly instead of taking a heap
            # round-trip through the event queue.
            event = target


class _MultiEvent(Event):
    """Base for AnyOf/AllOf composition events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self.sim._schedule_call(self._check, ev)
                self._pending += 1
            elif ev.callbacks is not None:
                ev.callbacks.append(self._check)
                self._pending += 1
            else:  # pragma: no cover - defensive
                self.sim._schedule_call(self._check, ev)
                self._pending += 1

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_MultiEvent):
    """Triggers when any member event triggers.

    Succeeds with a dict mapping the triggered events to their values.
    Fails if the first member to trigger failed.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        # Use .processed, not .triggered: a pending Timeout counts as
        # triggered from creation, but only fires once its callbacks run.
        self.succeed({ev: ev.value for ev in self.events if ev.processed and ev.ok})


class AllOf(_MultiEvent):
    """Triggers when every member event has triggered.

    Succeeds with a dict mapping all events to their values; fails as
    soon as any member fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed({ev: ev.value for ev in self.events})


class Simulator:
    """The event loop: a priority queue of (time, sequence, action).

    All simulated components share one :class:`Simulator`.  Time is a
    float in seconds.  ``run(until=...)`` executes events in timestamp
    order until the queue empties or the horizon is reached.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0

    # -- public API --------------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have."""
        return AllOf(self, events)

    def call_at(self, at: float, fn: Callable, arg: Any) -> None:
        """Queue ``fn(arg)`` at absolute simulated time ``at``.

        The one-shot completion primitive behind the device's
        zero-coroutine IO fast path: a submitter that can compute its
        finish time analytically schedules a single callback instead of
        parking a generator on a :class:`Timeout`.  ``at`` must not be
        in the past — completions are computed from ``max(now, ...)``
        reservation timestamps, so an earlier time is always a bug.
        """
        if at < self.now:
            raise SimulationError(f"call_at({at}) is before now ({self.now})")
        self._seq += 1
        heappush(self._heap, (at, self._seq, fn, arg))

    def run(self, until: Optional[float] = None) -> None:
        """Execute events in order until the horizon (or queue drain).

        When ``until`` is given, time is advanced exactly to ``until``
        even if the last event fires earlier, so back-to-back ``run``
        calls observe a continuous clock.
        """
        heap = self._heap
        pop = heapq.heappop
        if until is None:
            while heap:
                at, _seq, fn, arg = pop(heap)
                self.now = at
                fn(arg)
            return
        while heap:
            item = pop(heap)
            if item[0] > until:
                # Sole over-horizon pop per run(): put the action back
                # (it is still the minimum) and stop.
                heapq.heappush(heap, item)
                break
            self.now = item[0]
            item[2](item[3])
        if until > self.now:
            self.now = until

    def step(self) -> bool:
        """Execute a single queued action. Returns False when empty."""
        if not self._heap:
            return False
        at, _seq, fn, arg = heapq.heappop(self._heap)
        self.now = at
        fn(arg)
        return True

    def step_while(
        self, predicate: Callable[[], bool], until: Optional[float] = None
    ) -> int:
        """Step queued actions while ``predicate()`` holds; returns steps.

        Drains exactly as much of the queue as a condition needs — e.g.
        "run until the scheduler backlog and device in-flight count hit
        zero" — without committing to a wall of simulated time the way
        ``run(until=now + slack)`` does.  Stops when the predicate goes
        false or the queue empties, whichever is first.  ``until``
        bounds the drain: an action scheduled past it is left queued
        (the clock never advances beyond ``until``), which is what the
        fluid fast-forward handover uses so a drain-to-quiet can never
        overrun its granted epoch edge.
        """
        steps = 0
        heap = self._heap
        pop = heapq.heappop
        while heap and predicate():
            if until is not None and heap[0][0] > until:
                break
            at, _seq, fn, arg = pop(heap)
            self.now = at
            fn(arg)
            steps += 1
        return steps

    @property
    def queue_size(self) -> int:
        """Number of pending queued actions (diagnostics only)."""
        return len(self._heap)

    # -- internals ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue an event's callback dispatch ``delay`` seconds from now.

        Reached exactly once per event: ``succeed``/``fail`` raise on a
        second trigger and :class:`Timeout` schedules only from its
        constructor, so no double-schedule guard is needed.  The hot
        trigger sites inline this; it remains for external callers.
        """
        self._seq += 1
        heappush(self._heap, (self.now + delay, self._seq, _dispatch_event, event))

    def _schedule_call(self, fn: Callable, arg: Any, delay: float = 0.0) -> None:
        """Queue an arbitrary callable (used to resume processes)."""
        self._seq += 1
        heappush(self._heap, (self.now + delay, self._seq, fn, arg))

    _dispatch = staticmethod(_dispatch_event)
