"""Steady-state detection for hybrid analytic/DES simulation.

A DES run spends most of its events on statistically boring stretches.
:class:`SteadyStateMonitor` recognises two eligibility classes the
epoch runner (:func:`repro.workload.epoch.run_epoch_trial`) may
fast-forward through:

- **quiet** — every tenant's queue is empty, the device is idle, no
  fault window is open, and the offered load is comfortably under the
  provisioned VOP capacity.  The system is memoryless: each op
  arrives, is charged, is serviced, and completes before the next one,
  so the epoch's aggregate effect (completions, VOP charges, byte
  counters, latency mass) is computable analytically op by op.
- **stable backlog (fluid)** — queues are *not* empty, but the backlog
  has been drifting below tolerance over a confirmation window with no
  GC pressure, no fault edge, and demand under the VOP headroom.  The
  DDRR round schedule is then periodic, so the epoch can be replayed
  through the fluid engine's analytic round schedule instead of event
  by event.  Parked NVMe submission-queue commands are ordinary queue
  backlog here — the runner's handover drain empties the SQs before
  the replay starts, so "no SQ parking" holds at epoch start by
  construction.

The monitor never mutates the simulation; it answers:

- :meth:`eligible` — is the system quiet *right now*?
- :meth:`fluid_eligible` — is the backlog provably stable enough for a
  fluid epoch?  Rejections report the measured backlog-drift rate and
  the confirmation-window progress, not just an opaque label.
- :meth:`next_epoch` / :meth:`next_fluid_epoch` — how far can simulated
  time jump before the next "interesting" edge (fault-window
  start/end, scheduled rate change, projected GC watermark crossing,
  end of horizon)?

Every rejection carries a human-readable reason, and the runner feeds
segment outcomes back through :meth:`note_segment`, so trials can
report — per reason, in simulated seconds — *why* fast-forward
coverage was lost (:meth:`publish_metrics` exports the counters to a
:class:`~repro.obs.metrics.MetricsRegistry`).
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["SteadyStateMonitor", "reason_stem"]


def reason_stem(reason: str) -> str:
    """Collapse a detailed reason ("drift(+612/s>400/s)") to its stem."""
    cut = reason.find("(")
    return reason if cut < 0 else reason[:cut]


class SteadyStateMonitor:
    """Decides when the DES may fast-forward through an epoch.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.core.Simulator` whose clock gates the
        decision.
    scheduler:
        The :class:`~repro.core.scheduler.LibraScheduler`; its backlog
        must be zero for a *quiet* epoch and drift-stable for a *fluid*
        one.
    device:
        The device under the scheduler.  Structural SSDs expose
        ``gc_running`` and an ``ftl`` with watermarks; surrogate
        devices may omit both (``getattr`` guards below).
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`.  Epochs never
        span a window edge and never start inside a window.
    headroom:
        Fraction of the cost model's ``max_iop`` the offered demand may
        reach before the analytic model is distrusted (queues only
        provably stay bounded when arrivals are slower than service).
    confirm_window:
        Seconds of backlog samples required before a fluid epoch is
        granted (the stationarity confirmation window).
    confirm_samples:
        Minimum number of samples the window must hold.
    fluid_backlog:
        Largest instantaneous backlog (chunks) the fluid regime
        accepts; larger queues mean the system is digesting a burst,
        not sitting at a stationary operating point.
    fluid_drift:
        Largest *positive* backlog drift rate (chunks/sec, measured
        endpoint-to-endpoint over the window) accepted as "stable";
        draining backlogs pass regardless (see :meth:`fluid_eligible`).
    """

    def __init__(
        self,
        sim,
        scheduler,
        device,
        fault_plan=None,
        headroom: float = 0.85,
        confirm_window: float = 0.1,
        confirm_samples: int = 3,
        fluid_backlog: int = 256,
        fluid_drift: float = 400.0,
    ):
        if not 0 < headroom <= 1:
            raise ValueError(f"headroom {headroom} not in (0, 1]")
        if confirm_window <= 0 or confirm_samples < 2:
            raise ValueError(
                f"confirmation window needs positive span and >= 2 samples, "
                f"got {confirm_window}/{confirm_samples}"
            )
        self.sim = sim
        self.scheduler = scheduler
        self.device = device
        self.fault_plan = fault_plan
        self.headroom = headroom
        self.confirm_window = confirm_window
        self.confirm_samples = confirm_samples
        self.fluid_backlog = fluid_backlog
        self.fluid_drift = fluid_drift
        self.max_vops_per_sec = float(scheduler.cost_model.max_iop)
        #: persistent caller-registered edges (control-plane events:
        #: planned tenant arrivals/departures, migrations, map changes)
        #: that epochs never jump across — the mechanism that lets a
        #: churn trial fast-forward *between* control actions.  Kept
        #: sorted; edges at or before the clock are pruned lazily.
        self.extra_edges: list = []
        #: (t, backlog chunks) samples of the confirmation window;
        #: cleared whenever a hard disturbance (GC, fault window, rate
        #: change) breaks stationarity.
        self.samples: deque = deque()
        #: reason stem -> [rejections, simulated seconds spent in DES
        #: because of it]; fed by :meth:`note_segment`.
        self.rejections: Dict[str, list] = {}
        #: regime ("quiet"|"fluid") -> [epochs granted, seconds covered]
        self.grants: Dict[str, list] = {}

    # -- eligibility -------------------------------------------------------

    def eligible(self, demand_vops: float) -> Tuple[bool, str]:
        """Is the system quiet enough to model analytically right now?

        ``demand_vops`` is the offered load (VOPs/sec summed over all
        tenants) for the prospective epoch.  Returns ``(ok, reason)``
        where ``reason`` names the first disqualifier (or ``"steady"``).
        """
        if self.scheduler.backlog > 0:
            return False, "backlog"
        if self.device.in_flight > 0:
            return False, "inflight"
        disturbed = self._disturbance()
        if disturbed is not None:
            return False, disturbed
        if demand_vops > self.headroom * self.max_vops_per_sec:
            return False, "overload"
        return True, "steady"

    def fluid_eligible(self, demand_vops: float) -> Tuple[bool, str]:
        """Is the backlog provably *stable* (fluid regime) right now?

        The stable-backlog predicate: no GC pressure, no fault window,
        demand under the headroom, the instantaneous backlog within
        ``fluid_backlog`` chunks, and a full confirmation window of
        samples whose endpoint-to-endpoint drift rate stays under
        ``fluid_drift`` chunks/sec.  Parked NVMe submission-queue
        commands do *not* veto here: unlike GC or a fault window they
        are drainable queue state, and the epoch runner's handover
        drains every SQ to empty before the fluid replay starts (the
        "no SQ parking" part of the predicate holds at epoch start by
        construction).  Rejection reasons carry the measured values —
        e.g. ``"confirming(2/3 samples, 0.05s/0.10s)"`` while the
        window is still filling, ``"drift(+612/s>400/s)"`` on a breach
        — so a trial can see exactly how far from stable it was.
        """
        disturbed = self._hard_disturbance()
        if disturbed is not None:
            return False, disturbed
        plan = self.fault_plan
        if plan is not None:
            # A *future* fault window also disqualifies the fluid class
            # (unlike the quiet one, which fast-forwards between
            # windows).  Faults are applied at device admission time,
            # and under load admission lags arrival by the queue wait —
            # a fluid epoch hands the DES back an empty queue, shifting
            # which ops are admitted inside the window and breaking the
            # exactness contract.  Once the plan is exhausted the
            # injector consumes no randomness and counts are
            # timing-independent again.
            ahead = plan.next_edge(self.sim.now)
            if math.isfinite(ahead):
                return False, f"fault-ahead({ahead:.2f}s)"
        if demand_vops > self.headroom * self.max_vops_per_sec:
            return False, "overload"
        backlog = self.scheduler.backlog
        if backlog > self.fluid_backlog:
            return False, f"backlog({backlog}>{self.fluid_backlog})"
        self._prune_samples()
        n = len(self.samples)
        span = self.samples[-1][0] - self.samples[0][0] if n >= 2 else 0.0
        if n < self.confirm_samples or span < self.confirm_window:
            return False, (
                f"confirming({n}/{self.confirm_samples} samples, "
                f"{span:.2f}s/{self.confirm_window:.2f}s)"
            )
        drift = (self.samples[-1][1] - self.samples[0][1]) / span
        if drift > self.fluid_drift:
            # Asymmetric on purpose: a *growing* backlog means the
            # stationary operating point has not been reached (or a
            # burst is in progress) and the round schedule would be
            # chasing it.  A *draining* backlog is benign — the fluid
            # handover drains the queue to quiet anyway, and the epoch
            # then starts from a stable point.
            return False, f"drift({drift:+.0f}/s>{self.fluid_drift:.0f}/s)"
        return True, "stable"

    def _parked(self) -> Optional[str]:
        """Drainable multi-queue state: commands parked in NVMe SQs.

        Every SQ must be drained for the *quiet* class, not just the
        aggregate — a command parked in one submission queue (or
        waiting on a controller tag) keeps the timeline stateful even
        when other queues are idle.  For the *fluid* class this is
        ordinary queue backlog: the handover drain empties the SQs
        before the epoch starts, so it neither vetoes eligibility nor
        invalidates the confirmation window.
        """
        queue_backlogs = getattr(self.device, "queue_backlogs", None)
        if queue_backlogs is not None and any(queue_backlogs):
            return "sq-backlog"
        fetch_backlogs = getattr(self.device, "fetch_backlogs", None)
        if fetch_backlogs is not None and any(fetch_backlogs):
            return "sq-fetch"
        return None

    def _hard_disturbance(self) -> Optional[str]:
        """A disturbance that breaks stationarity itself: GC or a fault
        window.  Unlike parked SQ commands these cannot be drained away
        — samples taken under them say nothing about the stationary
        regime that follows, so they clear the confirmation window and
        veto both eligibility classes.
        """
        if getattr(self.device, "gc_running", False):
            return "gc"
        ftl = getattr(self.device, "ftl", None)
        if ftl is not None and (ftl.gc_needed or ftl.host_starved):
            return "gc"
        plan = self.fault_plan
        if plan is not None and not plan.quiescent(self.sim.now):
            return "fault"
        return None

    def _disturbance(self) -> Optional[str]:
        """First disqualifier for the *quiet* class (parked SQs count)."""
        return self._parked() or self._hard_disturbance()

    # -- confirmation window ----------------------------------------------

    def observe(self, backlog: Optional[int] = None) -> None:
        """Sample the backlog into the confirmation window.

        The runner calls this from event-by-event stretches (per main
        loop iteration and per arrival, both cheap).  A sample taken
        while a *hard* disturbance is active clears the window instead —
        stationarity must be re-confirmed from scratch after GC or a
        fault window.  Parked SQ commands are sampled normally: they
        are part of the loaded operating point being confirmed.
        """
        if self._hard_disturbance() is not None:
            self.samples.clear()
            return
        if backlog is None:
            backlog = self.scheduler.backlog
        self.samples.append((self.sim.now, backlog))
        self._prune_samples()

    def observe_virtual(self, t: float, backlog: int) -> None:
        """Feed one backlog sample from the fluid engine's virtual
        trajectory.

        A fluid epoch that ran cleanly to its edge *is* evidence of
        continued stationarity, so the engine streams its virtual
        backlog here; on epoch exit the window is already full and the
        next fluid epoch can be granted immediately instead of paying a
        fresh confirmation window of event-by-event time.
        """
        self.samples.append((t, backlog))
        self._prune_samples()

    def note_disturbance(self) -> None:
        """Invalidate the confirmation window (rate change, control edge)."""
        self.samples.clear()

    def _prune_samples(self) -> None:
        # Keep a little more than one window so span >= confirm_window
        # is reachable; drop everything older.
        horizon = self.sim.now - 2.0 * self.confirm_window
        samples = self.samples
        while len(samples) > 2 and samples[0][0] < horizon:
            samples.popleft()

    def window_loaded(self, threshold: float = 1.0) -> bool:
        """Does the confirmation window show a persistently loaded queue?

        Mean sampled backlog above ``threshold`` chunks.  The epoch
        runner uses this to pick an engine when both could apply: a
        loaded window means queue-wait dominates latency and the fluid
        replay should be preferred over the quiet (idle-latency) one.
        """
        self._prune_samples()
        n = len(self.samples)
        if n < 2:
            return False
        return sum(b for _, b in self.samples) / n > threshold

    def window_state(self) -> Dict[str, float]:
        """Diagnostics: current confirmation-window progress and drift."""
        self._prune_samples()
        n = len(self.samples)
        span = self.samples[-1][0] - self.samples[0][0] if n >= 2 else 0.0
        drift = (
            (self.samples[-1][1] - self.samples[0][1]) / span
            if n >= 2 and span > 0
            else 0.0
        )
        return {"samples": n, "span": span, "drift_per_sec": drift}

    # -- persistent edges --------------------------------------------------

    def register_edge(self, at: float) -> None:
        """Register a future control-plane event time as an epoch edge."""
        if at > self.sim.now:
            bisect.insort(self.extra_edges, at)

    def register_edges(self, ats) -> None:
        for at in ats:
            self.register_edge(at)

    # -- horizon -----------------------------------------------------------

    def next_epoch(
        self,
        demand_vops: float,
        until: float,
        extra_edges: Sequence[float] = (),
        write_page_rate: float = 0.0,
        min_epoch: float = 0.0,
    ) -> Tuple[Optional[float], str]:
        """Farthest time the clock may jump in one *quiet* analytic step.

        The edge is the earliest of: ``until`` (end of horizon), the
        next fault-window boundary, any caller-supplied edge (rate
        changes, control-plane events), and — when the epoch writes at
        ``write_page_rate`` FTL pages/sec — the projected time the GC
        low watermark is crossed.  Epochs shorter than ``min_epoch``
        are refused (reason ``"short"``): jumping a few milliseconds
        costs more bookkeeping than it saves.

        Returns ``(edge, reason)``; ``edge`` is ``None`` when no
        worthwhile jump exists and ``reason`` explains why.
        """
        ok, reason = self.eligible(demand_vops)
        if not ok:
            return None, reason
        return self._bound_epoch(until, extra_edges, write_page_rate, min_epoch)

    def next_fluid_epoch(
        self,
        demand_vops: float,
        until: float,
        extra_edges: Sequence[float] = (),
        write_page_rate: float = 0.0,
        min_epoch: float = 0.0,
    ) -> Tuple[Optional[float], str]:
        """Fluid twin of :meth:`next_epoch` (stable-backlog eligibility).

        Same edge computation, but gated on :meth:`fluid_eligible` and
        using the FTL's tighter :meth:`~repro.ssd.Ftl.pages_until_gc`
        projection when available (a loaded epoch keeps writing through
        the open append blocks, so the spare-block bound alone ends
        epochs early).
        """
        ok, reason = self.fluid_eligible(demand_vops)
        if not ok:
            return None, reason
        return self._bound_epoch(
            until, extra_edges, write_page_rate, min_epoch, tight_gc=True
        )

    def _bound_epoch(
        self,
        until: float,
        extra_edges: Sequence[float],
        write_page_rate: float,
        min_epoch: float,
        tight_gc: bool = False,
    ) -> Tuple[Optional[float], str]:
        """Shared edge computation for both eligibility classes."""
        now = self.sim.now
        edge = until
        reason = "horizon"
        plan = self.fault_plan
        if plan is not None:
            fault_edge = plan.next_edge(now)
            if fault_edge < edge:
                edge, reason = fault_edge, "fault-edge"
        while self.extra_edges and self.extra_edges[0] <= now:
            self.extra_edges.pop(0)
        if self.extra_edges and self.extra_edges[0] < edge:
            edge, reason = self.extra_edges[0], "event"
        for extra in extra_edges:
            if now < extra < edge:
                edge, reason = extra, "event"
        if write_page_rate > 0.0:
            ftl = getattr(self.device, "ftl", None)
            if ftl is not None:
                if tight_gc and hasattr(ftl, "pages_until_gc"):
                    spare_pages = ftl.pages_until_gc()
                else:
                    spare_pages = ftl.gc_spare_pages
                gc_at = now + spare_pages / write_page_rate
                if gc_at < edge:
                    edge, reason = gc_at, "gc-horizon"
        if not math.isfinite(edge) or edge - now < min_epoch:
            return None, "short"
        return edge, reason

    # -- outcome accounting ------------------------------------------------

    def note_segment(self, mode: str, reason: str, span: float) -> None:
        """Record one trial segment's outcome for the loss report.

        DES segments accumulate under the rejection reason's stem;
        fast-forwarded segments under their regime (``"quiet"`` /
        ``"fluid"``), so ``rejections``/``grants`` together partition
        the simulated horizon.
        """
        if mode == "des":
            entry = self.rejections.setdefault(reason_stem(reason), [0, 0.0])
        else:
            entry = self.grants.setdefault(mode, [0, 0.0])
        entry[0] += 1
        entry[1] += span

    def publish_metrics(self, registry, name: str = "epoch") -> None:
        """Snapshot the per-reason counters into a MetricsRegistry.

        Idempotent (``install`` replaces): DES fallback seconds/count
        per rejection reason under ``<name>.des``, granted epoch
        seconds/count per regime under ``<name>.ff``.
        """
        from ..obs.metrics import Counter

        def snap(value: float) -> Counter:
            counter = Counter()
            counter.inc(value)
            return counter

        for reason, (count, seconds) in self.rejections.items():
            registry.install(f"{name}.des", snap(count), reason=reason, field="segments")
            registry.install(f"{name}.des", snap(seconds), reason=reason, field="seconds")
        for regime, (count, seconds) in self.grants.items():
            registry.install(f"{name}.ff", snap(count), regime=regime, field="epochs")
            registry.install(f"{name}.ff", snap(seconds), regime=regime, field="seconds")
