"""Steady-state detection for hybrid analytic/DES simulation.

A DES run spends most of its events on quiet stretches: every tenant's
queue is empty, the device is idle, no fault window is open, and the
offered load is comfortably under the provisioned VOP capacity.  During
such an *epoch* the system is memoryless — each op arrives, is charged,
is serviced, and completes before the next one — so its aggregate
effect (completions, VOP charges, byte counters, latency mass) can be
computed analytically instead of event-by-event.

:class:`SteadyStateMonitor` is the gatekeeper.  It never mutates the
simulation; it only answers two questions for the epoch runner
(:func:`repro.workload.epoch.run_epoch_trial`):

- :meth:`eligible` — is the system quiet *right now*, and is the
  offered demand low enough that queues provably stay empty?
- :meth:`next_epoch` — how far can simulated time jump before the next
  "interesting" edge (fault-window start/end, scheduled rate change,
  projected GC watermark crossing, end of horizon)?

Every rejection carries a human-readable reason so trials can report
why they fell back to event-by-event mode.
"""

from __future__ import annotations

import bisect
import math
from typing import Optional, Sequence, Tuple

__all__ = ["SteadyStateMonitor"]


class SteadyStateMonitor:
    """Decides when the DES may fast-forward through a quiet epoch.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.core.Simulator` whose clock gates the
        decision.
    scheduler:
        The :class:`~repro.core.scheduler.LibraScheduler`; its backlog
        must be zero for an epoch to start.
    device:
        The device under the scheduler.  Structural SSDs expose
        ``gc_running`` and an ``ftl`` with watermarks; surrogate
        devices may omit both (``getattr`` guards below).
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`.  Epochs never
        span a window edge and never start inside a window.
    headroom:
        Fraction of the cost model's ``max_iop`` the offered demand may
        reach before the analytic model is distrusted (queues only
        provably stay empty when arrivals are slower than service).
    """

    def __init__(
        self,
        sim,
        scheduler,
        device,
        fault_plan=None,
        headroom: float = 0.85,
    ):
        if not 0 < headroom <= 1:
            raise ValueError(f"headroom {headroom} not in (0, 1]")
        self.sim = sim
        self.scheduler = scheduler
        self.device = device
        self.fault_plan = fault_plan
        self.headroom = headroom
        self.max_vops_per_sec = float(scheduler.cost_model.max_iop)
        #: persistent caller-registered edges (control-plane events:
        #: planned tenant arrivals/departures, migrations, map changes)
        #: that epochs never jump across — the mechanism that lets a
        #: churn trial fast-forward *between* control actions.  Kept
        #: sorted; edges at or before the clock are pruned lazily.
        self.extra_edges: list = []

    # -- eligibility -------------------------------------------------------

    def eligible(self, demand_vops: float) -> Tuple[bool, str]:
        """Is the system quiet enough to model analytically right now?

        ``demand_vops`` is the offered load (VOPs/sec summed over all
        tenants) for the prospective epoch.  Returns ``(ok, reason)``
        where ``reason`` names the first disqualifier (or ``"steady"``).
        """
        if self.scheduler.backlog > 0:
            return False, "backlog"
        if self.device.in_flight > 0:
            return False, "inflight"
        # Multi-queue devices: every SQ must be drained, not just the
        # aggregate — a command parked in one submission queue (or
        # waiting on a controller tag) keeps the timeline stateful even
        # when other queues are idle.
        queue_backlogs = getattr(self.device, "queue_backlogs", None)
        if queue_backlogs is not None and any(queue_backlogs):
            return False, "sq-backlog"
        fetch_backlogs = getattr(self.device, "fetch_backlogs", None)
        if fetch_backlogs is not None and any(fetch_backlogs):
            return False, "sq-fetch"
        if getattr(self.device, "gc_running", False):
            return False, "gc"
        ftl = getattr(self.device, "ftl", None)
        if ftl is not None and (ftl.gc_needed or ftl.host_starved):
            return False, "gc"
        plan = self.fault_plan
        if plan is not None and not plan.quiescent(self.sim.now):
            return False, "fault"
        if demand_vops > self.headroom * self.max_vops_per_sec:
            return False, "overload"
        return True, "steady"

    # -- persistent edges --------------------------------------------------

    def register_edge(self, at: float) -> None:
        """Register a future control-plane event time as an epoch edge."""
        if at > self.sim.now:
            bisect.insort(self.extra_edges, at)

    def register_edges(self, ats) -> None:
        for at in ats:
            self.register_edge(at)

    # -- horizon -----------------------------------------------------------

    def next_epoch(
        self,
        demand_vops: float,
        until: float,
        extra_edges: Sequence[float] = (),
        write_page_rate: float = 0.0,
        min_epoch: float = 0.0,
    ) -> Tuple[Optional[float], str]:
        """Farthest time the clock may jump in one analytic step.

        The edge is the earliest of: ``until`` (end of horizon), the
        next fault-window boundary, any caller-supplied edge (rate
        changes, control-plane events), and — when the epoch writes at
        ``write_page_rate`` FTL pages/sec — the projected time the GC
        low watermark is crossed.  Epochs shorter than ``min_epoch``
        are refused (reason ``"short"``): jumping a few milliseconds
        costs more bookkeeping than it saves.

        Returns ``(edge, reason)``; ``edge`` is ``None`` when no
        worthwhile jump exists and ``reason`` explains why.
        """
        now = self.sim.now
        ok, reason = self.eligible(demand_vops)
        if not ok:
            return None, reason
        edge = until
        reason = "horizon"
        plan = self.fault_plan
        if plan is not None:
            fault_edge = plan.next_edge(now)
            if fault_edge < edge:
                edge, reason = fault_edge, "fault-edge"
        while self.extra_edges and self.extra_edges[0] <= now:
            self.extra_edges.pop(0)
        if self.extra_edges and self.extra_edges[0] < edge:
            edge, reason = self.extra_edges[0], "event"
        for extra in extra_edges:
            if now < extra < edge:
                edge, reason = extra, "event"
        if write_page_rate > 0.0:
            ftl = getattr(self.device, "ftl", None)
            if ftl is not None:
                gc_at = now + ftl.gc_spare_pages / write_page_rate
                if gc_at < edge:
                    edge, reason = gc_at, "gc-horizon"
        if not math.isfinite(edge) or edge - now < min_epoch:
            return None, "short"
        return edge, reason
