"""Fitted device surrogate: a statistical stand-in for the structural SSD.

The structural :class:`~repro.ssd.SsdDevice` earns its fidelity by
simulating controllers, channels, the FTL, and GC — which makes it the
single most expensive component in a sweep.  This module fits a
*surrogate profile* offline from the structural model's own op stream
and replays it as a fourth device profile:

- :func:`fit_surrogate` drives a closed-loop workload grid (op size ×
  queue depth × read mix) against a real :class:`SsdDevice`, collects
  per-kind completion-latency samples, and fits one log-linear model
  per (kind, quantile)::

      log(latency_q) = b0 + b1·log(size_KiB) + b2·log(qd) + b3·read_mix

  solved by least squares over the grid's empirical quantiles.  The
  coefficients — a few hundred floats — are committed as a JSON
  artifact next to this module (``surrogate_<profile>.json``).

- :class:`SurrogateModel` evaluates the fit: a monotone quantile curve
  per operating point, and inverse-CDF sampling by piecewise-linear
  interpolation between fitted quantiles (curves cached per rounded
  operating point, so the hot path is one uniform draw and one
  interpolation).

- :class:`SurrogateDevice` duck-types the slice of the device interface
  the scheduler and the epoch runner consume (``submit``, ``read``,
  ``write``, ``trim``, ``queue_depth``, ``in_flight``, ``stats``,
  ``epoch_read``/``epoch_write``), tracking queue depth from its own
  in-flight count and the read mix with an EWMA over submitted ops.

The surrogate is for *sweep* workloads — wide grids where per-op
structural fidelity matters less than the latency distribution shape.
Anything studying GC, faults, or FTL dynamics must keep the structural
model (the surrogate has no page map to age).

CLI::

    python -m repro.ssd.surrogate --fit            # refit + rewrite JSON
    python -m repro.ssd.surrogate --report out.json  # accuracy report
    python -m repro.ssd.surrogate --profile all --report out.json
                                                   # every committed fit
    python -m repro.ssd.surrogate --smoke          # tiny grid, stdout
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sim import OK_RESULT, Event, Simulator
from .device import SsdDevice
from .profiles import SsdProfile, get_profile
from .stats import SsdStats

__all__ = [
    "FIT_QUANTILES",
    "SurrogateDevice",
    "SurrogateModel",
    "default_artifact_path",
    "fit_surrogate",
    "fitted_profiles",
    "surrogate_report",
]

KIB = 1024

#: quantile levels the fit pins down (the sampler interpolates between)
FIT_QUANTILES = (0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99)
#: fitting grid: op sizes × queue depths × read fractions
FIT_SIZES = (4 * KIB, 16 * KIB, 64 * KIB)
FIT_DEPTHS = (1, 4, 16, 32)
FIT_MIXES = (1.0, 0.5, 0.0)
#: a grid cell contributes a (kind, quantile) row only above this count
MIN_SAMPLES = 64

_EWMA_ALPHA = 0.02


def default_artifact_path(profile_name: str) -> str:
    """The committed JSON artifact for ``profile_name`` (next to this file)."""
    return os.path.join(os.path.dirname(__file__), f"surrogate_{profile_name}.json")


def fitted_profiles() -> List[str]:
    """Profile names with a committed surrogate artifact, sorted."""
    here = os.path.dirname(__file__)
    names = []
    for entry in os.listdir(here):
        if entry.startswith("surrogate_") and entry.endswith(".json"):
            names.append(entry[len("surrogate_"):-len(".json")])
    return sorted(names)


# ---------------------------------------------------------------------------
# Fitting
# ---------------------------------------------------------------------------


def _features(size: int, qd: int, mix: float) -> List[float]:
    """Design-matrix row for one operating point."""
    return [1.0, math.log(size / KIB), math.log(qd), mix]


def _measure_cell(
    profile: SsdProfile,
    size: int,
    qd: int,
    mix: float,
    seed: int,
    horizon: float,
) -> Dict[str, List[float]]:
    """Closed-loop latencies from a fresh structural device at one point."""
    sim = Simulator()
    device = SsdDevice(sim, profile, seed=seed)
    rng = random.Random(seed ^ 0x5EED)
    page = profile.page_size
    max_slot = (profile.logical_capacity - size) // page
    samples: Dict[str, List[float]] = {"read": [], "write": []}

    def worker():
        while sim.now < horizon:
            offset = rng.randrange(0, max_slot) * page
            t0 = sim.now
            if rng.random() < mix:
                yield device.read(offset, size)
                samples["read"].append(sim.now - t0)
            else:
                yield device.write(offset, size)
                samples["write"].append(sim.now - t0)

    for _ in range(qd):
        sim.process(worker())
    sim.run(until=horizon)
    return samples


def fit_surrogate(
    profile_name: str = "intel320",
    seed: int = 23,
    horizon: float = 0.3,
    sizes: Tuple[int, ...] = FIT_SIZES,
    depths: Tuple[int, ...] = FIT_DEPTHS,
    mixes: Tuple[float, ...] = FIT_MIXES,
) -> dict:
    """Fit the surrogate artifact for one profile (see module docstring).

    Returns the artifact dict; callers serialize it with
    :func:`json.dump`.  The artifact keeps the empirical quantile table
    alongside the coefficients so accuracy reports can be produced
    without re-running the grid.
    """
    profile = get_profile(profile_name)
    cells = []
    index = 0
    for size in sizes:
        for qd in depths:
            for mix in mixes:
                index += 1
                samples = _measure_cell(
                    profile, size, qd, mix, seed=seed + index, horizon=horizon
                )
                cell = {"size": size, "qd": qd, "mix": mix, "quantiles": {}}
                for kind, values in samples.items():
                    if len(values) < MIN_SAMPLES:
                        continue
                    arr = np.sort(np.asarray(values))
                    cell["quantiles"][kind] = [
                        float(np.quantile(arr, q)) for q in FIT_QUANTILES
                    ]
                    cell.setdefault("samples", {})[kind] = len(values)
                cells.append(cell)

    coef: Dict[str, List[List[float]]] = {}
    residuals: Dict[str, List[float]] = {}
    for kind in ("read", "write"):
        rows = [c for c in cells if kind in c["quantiles"]]
        if not rows:
            continue
        design = np.asarray([_features(c["size"], c["qd"], c["mix"]) for c in rows])
        kind_coef = []
        kind_resid = []
        for qi in range(len(FIT_QUANTILES)):
            y = np.log([c["quantiles"][kind][qi] for c in rows])
            beta, *_ = np.linalg.lstsq(design, y, rcond=None)
            kind_coef.append([float(b) for b in beta])
            predicted = design @ beta
            # mean |relative error| in latency space, not log space
            kind_resid.append(float(np.mean(np.abs(np.exp(predicted - y) - 1.0))))
        coef[kind] = kind_coef
        residuals[kind] = kind_resid

    return {
        "profile": profile_name,
        "quantiles": list(FIT_QUANTILES),
        "features": ["1", "log(size_kib)", "log(qd)", "read_mix"],
        "coef": coef,
        "fit_error": residuals,
        "grid": {
            "sizes": list(sizes),
            "depths": list(depths),
            "mixes": list(mixes),
            "horizon": horizon,
            "seed": seed,
        },
        "cells": cells,
    }


# ---------------------------------------------------------------------------
# Evaluation and sampling
# ---------------------------------------------------------------------------


class SurrogateModel:
    """Evaluates a fitted surrogate artifact (see :func:`fit_surrogate`)."""

    def __init__(self, artifact: dict):
        self.artifact = artifact
        self.profile_name = artifact["profile"]
        self.levels = tuple(artifact["quantiles"])
        self._coef = {
            kind: np.asarray(rows) for kind, rows in artifact["coef"].items()
        }
        self._curves: Dict[Tuple[str, int, int, float], Tuple[float, ...]] = {}

    @classmethod
    def load(cls, profile_name: str = "intel320", path: Optional[str] = None) -> "SurrogateModel":
        path = path or default_artifact_path(profile_name)
        with open(path) as fh:
            return cls(json.load(fh))

    def curve(self, kind: str, size: int, qd: int, mix: float) -> Tuple[float, ...]:
        """Fitted latency at each quantile level, forced monotone.

        Independent per-quantile fits can cross where the grid is thin;
        a running max restores a valid distribution.  Curves are cached
        per (kind, size, qd, mix rounded to 1/64) — the sampler's hot
        path is then a dict hit.
        """
        key = (kind, size, qd, round(mix * 64.0) / 64.0)
        cached = self._curves.get(key)
        if cached is not None:
            return cached
        x = np.asarray(_features(size, max(1, qd), key[3]))
        lat = np.exp(self._coef[kind] @ x)
        curve = tuple(np.maximum.accumulate(lat).tolist())
        self._curves[key] = curve
        return curve

    def sample(self, rng: random.Random, kind: str, size: int, qd: int, mix: float) -> float:
        """One latency draw: inverse-CDF over the fitted quantile curve."""
        curve = self.curve(kind, size, qd, mix)
        u = rng.random()
        levels = self.levels
        if u <= levels[0]:
            return curve[0]
        if u >= levels[-1]:
            return curve[-1]
        for i in range(1, len(levels)):
            if u <= levels[i]:
                lo, hi = levels[i - 1], levels[i]
                frac = (u - lo) / (hi - lo)
                return curve[i - 1] + frac * (curve[i] - curve[i - 1])
        return curve[-1]  # pragma: no cover - loop always returns

    def median(self, kind: str, size: int, qd: int, mix: float) -> float:
        curve = self.curve(kind, size, qd, mix)
        return curve[self.levels.index(0.5)] if 0.5 in self.levels else curve[len(curve) // 2]


# ---------------------------------------------------------------------------
# The surrogate device
# ---------------------------------------------------------------------------


class SurrogateDevice:
    """Statistical device: latencies sampled from a fitted surrogate.

    Implements the interface slice the Libra scheduler, the raw-IO
    harness, and the epoch runner consume.  There is no FTL, no GC, and
    no fault machinery — every op succeeds after a sampled latency — so
    the steady-state monitor sees it as permanently quiet (``gc_running``
    is absent → False; ``ftl`` is absent → watermark checks skip).
    """

    def __init__(
        self,
        sim: Simulator,
        profile: SsdProfile,
        model: Optional[SurrogateModel] = None,
        seed: int = 11,
    ):
        self.sim = sim
        self.profile = profile
        self.model = model or SurrogateModel.load(profile.name)
        self.stats = SsdStats()
        self.op_observer = None
        self.tracer = None
        self._rng = random.Random(seed)
        self._inflight = 0
        #: EWMA of the submitted read fraction — the model's mix feature
        self._read_mix = 0.5

    @property
    def queue_depth(self) -> int:
        return self.profile.queue_depth

    @property
    def in_flight(self) -> int:
        return self._inflight

    # -- scheduler dispatch path -------------------------------------------

    def submit(self, is_read: bool, offset: int, size: int, ctx, callback, cb_arg) -> None:
        self._read_mix += _EWMA_ALPHA * ((1.0 if is_read else 0.0) - self._read_mix)
        self._inflight += 1
        kind = "read" if is_read else "write"
        latency = self.model.sample(
            self._rng, kind, size, self._inflight, self._read_mix
        )
        self.sim.call_at(
            self.sim.now + latency, self._finish, (callback, cb_arg, is_read, size)
        )

    def _finish(self, arg) -> None:
        callback, cb_arg, is_read, size = arg
        self._inflight -= 1
        stats = self.stats
        if is_read:
            stats.reads += 1
            stats.read_bytes += size
        else:
            stats.writes += 1
            stats.write_bytes += size
        if self.op_observer is not None:
            self.op_observer("read" if is_read else "write", size)
        callback(cb_arg, OK_RESULT)

    # -- direct Event API (drivers that bypass the scheduler) ---------------

    def read(self, offset: int, size: int, ctx=None) -> Event:
        done = Event(self.sim)
        self.submit(True, offset, size, ctx, _succeed, done)
        return done

    def write(self, offset: int, size: int, ctx=None) -> Event:
        done = Event(self.sim)
        self.submit(False, offset, size, ctx, _succeed, done)
        return done

    def trim(self, offset: int, size: int) -> None:
        self.stats.trims += 1

    # -- epoch fast-forward hooks -------------------------------------------

    def epoch_read(self, offset: int, size: int) -> float:
        """Quiet-epoch read: one idle-depth sample, counters updated."""
        stats = self.stats
        stats.reads += 1
        stats.read_bytes += size
        return self.model.sample(self._rng, "read", size, 1, self._read_mix)

    def epoch_write(self, offset: int, size: int) -> float:
        stats = self.stats
        stats.writes += 1
        stats.write_bytes += size
        return self.model.sample(self._rng, "write", size, 1, self._read_mix)

    def maybe_collect(self) -> None:
        """No GC to start — the surrogate has no page map to compact."""


def _succeed(done: Event, _result) -> None:
    done.succeed()


# ---------------------------------------------------------------------------
# Accuracy report
# ---------------------------------------------------------------------------


def surrogate_report(
    profile_name: str = "intel320",
    path: Optional[str] = None,
    seed: int = 517,
    horizon: float = 0.15,
) -> dict:
    """Compare the committed fit against a fresh empirical smoke grid.

    Re-measures a small off-seed grid on the structural device and
    reports the mean absolute relative error of the fitted quantiles —
    the artifact CI uploads so drift in the structural model shows up
    as fit error, not silent staleness.
    """
    model = SurrogateModel.load(profile_name, path)
    profile = get_profile(profile_name)
    rows = []
    errors: Dict[str, List[float]] = {"read": [], "write": []}
    index = 0
    for size in (FIT_SIZES[0], FIT_SIZES[-1]):
        for qd in (1, 16):
            for mix in (1.0, 0.5):
                index += 1
                samples = _measure_cell(
                    profile, size, qd, mix, seed=seed + index, horizon=horizon
                )
                for kind, values in samples.items():
                    if len(values) < MIN_SAMPLES:
                        continue
                    arr = np.sort(np.asarray(values))
                    empirical = [float(np.quantile(arr, q)) for q in model.levels]
                    fitted = model.curve(kind, size, qd, mix)
                    rel = [
                        abs(f - e) / e for f, e in zip(fitted, empirical) if e > 0
                    ]
                    err = float(np.mean(rel)) if rel else 0.0
                    errors[kind].append(err)
                    rows.append(
                        {
                            "size": size,
                            "qd": qd,
                            "mix": mix,
                            "kind": kind,
                            "samples": len(values),
                            "mean_abs_rel_error": err,
                        }
                    )
    summary = {
        kind: (float(np.mean(errs)) if errs else None) for kind, errs in errors.items()
    }
    return {
        "profile": profile_name,
        "quantiles": list(model.levels),
        "cells": rows,
        "mean_abs_rel_error": summary,
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="intel320")
    parser.add_argument("--fit", action="store_true", help="refit and rewrite the JSON artifact")
    parser.add_argument("--smoke", action="store_true", help="tiny fit grid, print to stdout only")
    parser.add_argument("--report", metavar="OUT", help="write an accuracy report JSON to OUT")
    parser.add_argument("--out", help="artifact path override for --fit")
    args = parser.parse_args(argv)

    if args.smoke:
        artifact = fit_surrogate(
            args.profile,
            horizon=0.1,
            sizes=(4 * KIB,),
            depths=(1, 8),
            mixes=(1.0, 0.0),
        )
        print(json.dumps({k: artifact[k] for k in ("profile", "coef", "fit_error")}, indent=2))
        return 0
    if args.fit:
        artifact = fit_surrogate(args.profile)
        out = args.out or default_artifact_path(args.profile)
        with open(out, "w") as fh:
            json.dump(artifact, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {out}")
        for kind, errs in artifact["fit_error"].items():
            print(f"  {kind}: mean |rel err| per quantile = "
                  + ", ".join(f"{e:.1%}" for e in errs))
        return 0
    if args.report:
        if args.profile == "all":
            names = fitted_profiles()
            report = {
                "profiles": {name: surrogate_report(name) for name in names}
            }
            summary = {
                name: report["profiles"][name]["mean_abs_rel_error"]
                for name in names
            }
        else:
            report = surrogate_report(args.profile)
            summary = report["mean_abs_rel_error"]
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.report}")
        print(json.dumps(summary, indent=2))
        return 0
    parser.error("one of --fit, --smoke, --report is required")
    return 2  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
