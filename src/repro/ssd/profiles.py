"""SSD device parameter profiles.

The paper evaluates on three SSDs: an Intel 320 (SATA II), a Samsung 840
Pro and an OCZ Vector (both SATA III).  We model each as a parameter set
for the structural device model in :mod:`repro.ssd.device`: a controller
stage whose per-op cost caps IOP throughput, parallel flash channels
whose transfer rates cap bandwidth, program/erase penalties that make
writes more expensive than reads, and an FTL whose garbage collection
produces write amplification under random overwrite.

The constants are calibrated so the Intel profile lands near the paper's
headline numbers (peak ~37.5 kop/s interference-free VOP throughput,
~270 MB/s read bandwidth saturating around 64KB, write bandwidth
saturating around 32KB) while the SATA III profiles are faster with
different interference signatures (both show more degradation at large
write sizes, per Fig 7).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

__all__ = [
    "SsdProfile", "PROFILES", "get_profile",
    "intel320", "samsung840", "oczvector", "nvme",
]

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class SsdProfile:
    """All tunables for one simulated SSD.

    Times are in seconds, sizes in bytes, rates in bytes/second.
    """

    name: str
    # Host interface / controller ------------------------------------------
    queue_depth: int = 32            # per-queue depth (paper runs NCQ at 32)
    # NVMe queue architecture (ignored by the SATA SsdDevice; consumed by
    # repro.ssd.nvme.NvmeDevice) ---------------------------------------------
    num_queues: int = 1              # submission/completion queue pairs
    arbitration: str = "rr"          # SQ arbitration: "rr" | "wrr"
    wrr_weights: Optional[Tuple[int, ...]] = None  # per-SQ WRR credits
    core_tags: int = 0               # controller command tags (0 -> 2 * depth)
    ctrl_overhead_read: float = 22e-6   # fixed controller cost per read op
    ctrl_overhead_write: float = 55e-6  # fixed controller cost per write op
    # (writes cost more controller/firmware time than reads: mapping
    # updates, wear-leveling bookkeeping; this is also what couples
    # read and write throughput under mixed workloads)
    ctrl_byte_cost: float = 1.0 / (280 * MIB)  # SATA link + DMA per byte
    # Flash geometry ---------------------------------------------------------
    channels: int = 12               # independent channel/die pipelines
    page_size: int = 4 * KIB         # flash page (mapping granularity)
    pages_per_block: int = 64        # erase block = 256 KiB
    stripe_pages: int = 8            # pages per channel stripe chunk (32 KiB)
    logical_capacity: int = 256 * MIB   # advertised logical space
    overprovision: float = 1.0       # physical = logical * (1 + op)
    # Per-channel service times ----------------------------------------------
    read_access: float = 55e-6       # flash array read latency per chunk
    read_byte_cost: float = 1.0 / (40 * MIB)   # per-channel read transfer
    prog_latency: float = 650e-6     # program latency per chunk
    write_byte_cost: float = 1.0 / (40 * MIB)  # per-channel program transfer
    erase_latency: float = 1.5e-3    # block erase, blocks one channel
    # Garbage collection -------------------------------------------------------
    gc_low_watermark: float = 0.06   # start GC below this free-block frac
    gc_high_watermark: float = 0.10  # stop GC above this
    gc_reserve_blocks: int = 8       # always keep at least this many free
    ftl_policy: str = "greedy"       # see repro.ssd.ftl_policy.FTL_POLICIES

    @property
    def block_size(self) -> int:
        """Erase-block size in bytes."""
        return self.page_size * self.pages_per_block

    @property
    def physical_capacity(self) -> int:
        """Raw flash capacity in bytes (logical + overprovisioning)."""
        return int(self.logical_capacity * (1.0 + self.overprovision))

    @property
    def logical_pages(self) -> int:
        """Number of logical pages exposed to the host."""
        return self.logical_capacity // self.page_size

    @property
    def physical_blocks(self) -> int:
        """Number of physical erase blocks."""
        return self.physical_capacity // self.block_size

    def with_capacity(self, logical_capacity: int) -> "SsdProfile":
        """Clone the profile with a different logical capacity.

        Experiments shrink the address space to reach GC steady state
        quickly; the performance constants are capacity-independent.
        """
        return replace(self, logical_capacity=logical_capacity)

    def with_overprovision(self, overprovision: float) -> "SsdProfile":
        """Clone the profile with a different overprovisioning ratio.

        ``overprovision`` is spare-physical / logical (0.07 = 7% spare),
        the FTL design-space knob: less spare capacity means GC runs
        hotter and write amplification climbs.
        """
        if overprovision <= 0:
            raise ValueError(f"overprovision {overprovision} must be positive")
        return replace(self, overprovision=overprovision)

    def with_queues(
        self,
        num_queues: int,
        arbitration: str = "rr",
        wrr_weights: Optional[Tuple[int, ...]] = None,
    ) -> "SsdProfile":
        """Clone the profile with an NVMe queue configuration."""
        if num_queues < 1:
            raise ValueError(f"num_queues {num_queues} must be >= 1")
        if wrr_weights is not None and len(wrr_weights) != num_queues:
            raise ValueError(
                f"wrr_weights {wrr_weights} must have {num_queues} entries"
            )
        return replace(
            self, num_queues=num_queues, arbitration=arbitration,
            wrr_weights=wrr_weights,
        )


#: Intel 320 series, SATA II (3 Gbps).  The paper's primary device:
#: interference-free max ~37.5 kop/s, read BW ~270 MB/s, write ~160 MB/s.
intel320 = SsdProfile(name="intel320")

#: Samsung 840 Pro, SATA III (6 Gbps).  Faster controller and link;
#: pronounced degradation at large write sizes (Fig 7 middle panel).
samsung840 = SsdProfile(
    name="samsung840",
    ctrl_overhead_read=13e-6,
    ctrl_overhead_write=34e-6,
    ctrl_byte_cost=1.0 / (520 * MIB),
    channels=12,
    read_access=40e-6,
    read_byte_cost=1.0 / (48 * MIB),
    prog_latency=380e-6,
    write_byte_cost=1.0 / (32 * MIB),
    erase_latency=2.5e-3,
)

#: OCZ Vector (Indilinx controller), SATA III.  Parallelizes multi-tenant
#: IO better than single-tenant (throughput ratios > 1 in Fig 7), which we
#: model with more channels and a slightly slower controller.
oczvector = SsdProfile(
    name="oczvector",
    ctrl_overhead_read=15e-6,
    ctrl_overhead_write=38e-6,
    ctrl_byte_cost=1.0 / (500 * MIB),
    channels=16,
    read_access=45e-6,
    read_byte_cost=1.0 / (36 * MIB),
    prog_latency=420e-6,
    write_byte_cost=1.0 / (25 * MIB),
    erase_latency=3.0e-3,
)

#: A PCIe/NVMe-generation drive for the device design-space sweeps
#: (experiments/devicefig): eight SQ/CQ pairs, a faster link, and lower
#: per-command firmware cost — the controller stops being the IOP
#: bottleneck and the flash channels take over.
nvme = SsdProfile(
    name="nvme",
    num_queues=8,
    ctrl_overhead_read=8e-6,
    ctrl_overhead_write=18e-6,
    ctrl_byte_cost=1.0 / (1600 * MIB),
    channels=16,
    read_access=50e-6,
    read_byte_cost=1.0 / (44 * MIB),
    prog_latency=500e-6,
    write_byte_cost=1.0 / (36 * MIB),
    erase_latency=2.0e-3,
)

PROFILES: Dict[str, SsdProfile] = {
    p.name: p for p in (intel320, samsung840, oczvector, nvme)
}


def get_profile(name: str) -> SsdProfile:
    """Look up a built-in profile by name.

    Raises ``KeyError`` with the list of known names on a miss.
    """
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown SSD profile {name!r}; known: {known}") from None
