"""Multi-queue NVMe device model.

:class:`NvmeDevice` extends the structural SATA model
(:class:`~repro.ssd.device.SsdDevice`) with the queue architecture that
separates the NVMe generation from NCQ-era drives:

- **per-submitter SQ/CQ pairs** — each submitter (tenant) is assigned a
  submission queue of ``profile.queue_depth`` slots; the host-visible
  queue depth is ``num_queues * queue_depth``;
- **command-tag pool** — the controller core processes at most
  ``profile.core_tags`` commands concurrently (default ``2 * depth``).
  A command in a non-empty SQ waits until the arbiter grants it a tag;
- **pluggable arbitration** — when a tag frees, round-robin (burst 1)
  or weighted-round-robin (burst = per-SQ weight) selects which SQ's
  head command is fetched next, per the NVMe arbitration mechanisms;
- **per-queue controller lanes** — command processing (the fixed
  per-op firmware cost plus link/DMA byte time) is a FIFO lane *per
  queue* rather than one shared server, so controller throughput scales
  with queue count — the reason the SATA IOP ceiling lifts.

Everything below the controller is inherited unchanged: the same FTL
(and hence the same pluggable GC policies), the same parallel flash
channels, the same background GC loop, fault injection, op-observer
stream, and epoch fast-forward accounting.  The device duck-types the
scheduler/device slice exactly (``submit``/``read``/``write``/``trim``,
``queue_depth``/``in_flight``, ``epoch_read``/``epoch_write``/
``maybe_collect``), so the full Libra stack runs on it unmodified.

**Degeneration guarantee:** with ``num_queues=1`` the structure reduces
exactly to the SATA model — one SQ is the NCQ semaphore, one controller
lane is the scalar accumulator, and the tag pool (>= depth) can never
gate, so no command ever waits on arbitration.  The pinned equivalence
tests hold ``queues=1, depth=32`` bit-identical to ``SsdDevice`` on
tasks, ops, bytes, and stats.

Queue assignment is deterministic: tenants get SQs round-robin in order
of first submission (the dispatch ``ctx`` carries the tenant name);
anonymous submitters share SQ 0.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Deque, Dict, List, Optional, Tuple

from ..faults import CorruptionError
from ..sim import OK_RESULT, Event, Semaphore
from .device import SsdDevice, _succeed_event

__all__ = ["NvmeDevice"]


class NvmeDevice(SsdDevice):
    """A simulated multi-queue NVMe SSD (see module docstring)."""

    def __init__(self, sim, profile, **kwargs):
        if profile.num_queues < 1:
            raise ValueError(f"num_queues {profile.num_queues} must be >= 1")
        if profile.arbitration not in ("rr", "wrr"):
            raise ValueError(
                f"unknown arbitration {profile.arbitration!r} (rr|wrr)"
            )
        nq = profile.num_queues
        if profile.arbitration == "wrr":
            weights = profile.wrr_weights or (1,) * nq
            if len(weights) != nq:
                raise ValueError(
                    f"wrr_weights {weights} must have {nq} entries"
                )
            if any(w < 1 for w in weights):
                raise ValueError(f"wrr_weights {weights} must all be >= 1")
        else:
            weights = (1,) * nq
        super().__init__(sim, profile, **kwargs)
        self.num_queues = nq
        self._sq_depth = profile.queue_depth
        self._sqs = [
            Semaphore(sim, self._sq_depth, name=f"{profile.name}.sq{q}")
            for q in range(nq)
        ]
        #: per-queue controller lane next-free times (the multi-queue
        #: analogue of the SATA model's single ``_ctrl_free_at``)
        self._ctrl_lanes = [0.0] * nq
        self._total_tags = profile.core_tags or 2 * profile.queue_depth
        self._free_tags = self._total_tags
        #: per-SQ FIFO of commands admitted but awaiting a command tag
        self._fetch_wait: List[Deque[Event]] = [deque() for _ in range(nq)]
        self._weights: Tuple[int, ...] = tuple(weights)
        self._arb_cursor = 0
        self._burst_left = self._weights[0]
        #: tenant -> SQ index, assigned round-robin at first submission
        self._queue_map: Dict[object, int] = {}
        self._next_queue = 0
        self.trace_name = f"nvme.{profile.name}"

    # -- public interface --------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Host-visible depth: aggregate slots across all SQ/CQ pairs."""
        return self.num_queues * self._sq_depth

    @property
    def in_flight(self) -> int:
        """Currently outstanding host ops, summed over the SQs."""
        depth = self._sq_depth
        return sum(depth - sq.value for sq in self._sqs)

    @property
    def queue_backlogs(self) -> List[int]:
        """Per-SQ occupied slots (the fluid monitor's eligibility input)."""
        depth = self._sq_depth
        return [depth - sq.value for sq in self._sqs]

    @property
    def fetch_backlogs(self) -> List[int]:
        """Per-SQ commands admitted but still waiting for a command tag."""
        return [len(w) for w in self._fetch_wait]

    def read(self, offset: int, size: int, ctx=None) -> Event:
        q = self._queue_for(ctx)
        finish = self._nvme_admit_read(q, offset, size, ctx)
        if finish is None:
            return self.sim.process(self._nvme_do_read(q, offset, size, ctx))
        done = Event(self.sim)
        self.sim.call_at(
            finish, self._nvme_finish_read, (_succeed_event, done, size, q)
        )
        return done

    def write(self, offset: int, size: int, ctx=None) -> Event:
        q = self._queue_for(ctx)
        finish = self._nvme_admit_write(q, offset, size, ctx)
        if finish is None:
            return self.sim.process(self._nvme_do_write(q, offset, size, ctx))
        done = Event(self.sim)
        self.sim.call_at(
            finish, self._nvme_finish_write, (_succeed_event, done, size, q)
        )
        return done

    def submit(self, is_read: bool, offset: int, size: int, ctx, callback, cb_arg) -> None:
        """Slim submission path (see :meth:`SsdDevice.submit`)."""
        q = self._queue_for(ctx)
        if is_read:
            finish = self._nvme_admit_read(q, offset, size, ctx)
            if finish is not None:
                self.sim.call_at(
                    finish, self._nvme_finish_read, (callback, cb_arg, size, q)
                )
                return
            proc = self.sim.process(self._nvme_do_read(q, offset, size, ctx))
        else:
            finish = self._nvme_admit_write(q, offset, size, ctx)
            if finish is not None:
                self.sim.call_at(
                    finish, self._nvme_finish_write, (callback, cb_arg, size, q)
                )
                return
            proc = self.sim.process(self._nvme_do_write(q, offset, size, ctx))
        proc.callbacks.append(partial(callback, cb_arg))

    # -- queue assignment --------------------------------------------------

    def _queue_for(self, ctx) -> int:
        """SQ for a submission ``ctx`` (``(trace, tenant)`` or None)."""
        if self.num_queues == 1 or ctx is None:
            return 0
        tenant = ctx[1]
        if tenant is None:
            return 0
        q = self._queue_map.get(tenant)
        if q is None:
            q = self._next_queue % self.num_queues
            self._queue_map[tenant] = q
            self._next_queue += 1
        return q

    # -- arbitration -------------------------------------------------------

    def _acquire_tag(self, q: int):
        """DES sub-generator: obtain a controller command tag for SQ ``q``.

        Synchronous (no yield) when a tag is free and no earlier command
        in this SQ is waiting — the only case at ``num_queues=1``, where
        the pool (>= SQ depth) can never be exhausted.
        """
        if self._free_tags > 0 and not self._fetch_wait[q]:
            self._free_tags -= 1
            return
        ev = self.sim.event()
        self._fetch_wait[q].append(ev)
        yield ev  # the pump decremented the pool when it granted us

    def _arb_pump(self) -> None:
        """Grant freed tags to waiting SQ heads per the arbitration policy."""
        while self._free_tags > 0:
            q = self._next_waiting_sq()
            if q is None:
                return
            self._free_tags -= 1
            self._fetch_wait[q].popleft().succeed()

    def _next_waiting_sq(self) -> Optional[int]:
        """Weighted-round-robin scan: next SQ with a waiting command.

        Plain round-robin is the weight-1 special case.  The cursor
        serves up to ``weight`` consecutive commands from one SQ (an
        arbitration burst) before moving on.
        """
        waiting = self._fetch_wait
        n = self.num_queues
        for _ in range(n + 1):
            q = self._arb_cursor
            if self._burst_left > 0 and waiting[q]:
                self._burst_left -= 1
                return q
            self._arb_cursor = (q + 1) % n
            self._burst_left = self._weights[self._arb_cursor]
        return None

    # -- fast path ---------------------------------------------------------

    def _nvme_admit_read(self, q: int, offset: int, size: int, ctx) -> Optional[float]:
        """Admit a read on SQ ``q`` analytically; finish time or None.

        The multi-queue twin of :meth:`SsdDevice._admit_fast_read`, with
        two extra degraders: no free command tag, or earlier commands in
        this SQ already waiting for one (FIFO within an SQ).
        """
        if self._gc_running or not self.fast_path:
            return None
        faults = self.faults
        if faults is not None and not faults.quiescent(self.sim.now):
            return None
        profile = self.profile
        if offset < 0 or size <= 0 or offset + size > profile.logical_capacity:
            return None
        if self._free_tags == 0 or self._fetch_wait[q]:
            return None
        if not self._sqs[q].try_acquire():
            return None
        self._free_tags -= 1
        ready = self._reserve_ctrl_lane(q, profile.ctrl_overhead_read, size, ctx)
        finish = ready
        access = profile.read_access
        byte_cost = profile.read_byte_cost
        reserve = self._reserve_channel
        for chan, _pages, nbytes in self.ftl.read_channels(offset, size):
            t = reserve(ready, chan, access + nbytes * byte_cost, ctx)
            if t > finish:
                finish = t
        # Same float association as the coroutine fallback's timeout.
        now = self.sim.now
        return now + (finish - now)

    def _nvme_admit_write(self, q: int, offset: int, size: int, ctx) -> Optional[float]:
        """Write twin of :meth:`_nvme_admit_read` (adds the GC checks)."""
        if self._gc_running or not self.fast_path:
            return None
        ftl = self.ftl
        if ftl.host_starved:
            return None
        faults = self.faults
        if faults is not None and not faults.quiescent(self.sim.now):
            return None
        profile = self.profile
        if offset < 0 or size <= 0 or offset + size > profile.logical_capacity:
            return None
        if self._free_tags == 0 or self._fetch_wait[q]:
            return None
        if not self._sqs[q].try_acquire():
            return None
        self._free_tags -= 1
        ready = self._reserve_ctrl_lane(q, profile.ctrl_overhead_write, size, ctx)
        finish = ready
        prog = profile.prog_latency
        page_cost = profile.page_size * profile.write_byte_cost
        reserve = self._reserve_channel
        for chan, pages in ftl.host_write(offset, size).programs:
            t = reserve(ready, chan, prog + pages * page_cost, ctx)
            if t > finish:
                finish = t
        now = self.sim.now
        return now + (finish - now)

    def _nvme_finish_read(self, arg) -> None:
        """Fast-path read completion: CQ post + tag recycle + arbitration."""
        deliver, sink, size, q = arg
        if self.op_observer is not None:
            self.op_observer("read", size)
        stats = self.stats
        stats.reads += 1
        stats.read_bytes += size
        self._free_tags += 1
        self._arb_pump()
        self._sqs[q].release()
        deliver(sink, OK_RESULT)

    def _nvme_finish_write(self, arg) -> None:
        """Fast-path write completion (kicks GC before freeing the slot)."""
        deliver, sink, size, q = arg
        if self.op_observer is not None:
            self.op_observer("write", size)
        stats = self.stats
        stats.writes += 1
        stats.write_bytes += size
        self._maybe_start_gc()
        self._free_tags += 1
        self._arb_pump()
        self._sqs[q].release()
        deliver(sink, OK_RESULT)

    # -- coroutine fallback ------------------------------------------------

    def _nvme_do_read(self, q: int, offset: int, size: int, ctx=None):
        yield self._sqs[q].acquire()
        tagged = False
        try:
            yield from self._acquire_tag(q)
            tagged = True
            scale, extra, fault = yield from self._admit_faults(offset, size)
            ready = self._reserve_ctrl_lane(
                q, self.profile.ctrl_overhead_read, size, ctx
            )
            finish = ready
            for chan, _pages, nbytes in self.ftl.read_channels(offset, size):
                service = (
                    self.profile.read_access
                    + nbytes * self.profile.read_byte_cost
                ) * scale
                finish = max(finish, self._reserve_channel(ready, chan, service, ctx))
            finish += extra
            if finish > self.sim.now:
                yield self.sim.timeout(finish - self.sim.now)
            if self.op_observer is not None:
                self.op_observer("read", size)
            if fault is not None:
                if isinstance(fault, CorruptionError):
                    self.stats.corrupt_reads += 1
                else:
                    self.stats.read_faults += 1
                raise fault
            self.stats.reads += 1
            self.stats.read_bytes += size
        finally:
            if tagged:
                self._free_tags += 1
                self._arb_pump()
            self._sqs[q].release()

    def _nvme_do_write(self, q: int, offset: int, size: int, ctx=None):
        yield self._sqs[q].acquire()
        tagged = False
        try:
            yield from self._acquire_tag(q)
            tagged = True
            # Flow control: a fetched write stalls in the controller
            # while the free pool is down to the GC reserve (it holds
            # its tag — backpressure propagates to the other queues,
            # as a starved write cliff does on real devices).
            while self.ftl.host_starved:
                self._maybe_start_gc()
                yield self._gc_progress
            scale, extra, fault = yield from self._admit_faults(offset, size, write=True)
            ready = self._reserve_ctrl_lane(
                q, self.profile.ctrl_overhead_write, size, ctx
            )
            plan = self.ftl.host_write(offset, size)
            finish = ready
            for chan, pages in plan.programs:
                service = (
                    self.profile.prog_latency
                    + pages * self.profile.page_size * self.profile.write_byte_cost
                ) * scale
                finish = max(finish, self._reserve_channel(ready, chan, service, ctx))
            finish += extra
            if finish > self.sim.now:
                yield self.sim.timeout(finish - self.sim.now)
            if self.op_observer is not None:
                self.op_observer("write", size)
            if fault is not None:
                self.stats.write_faults += 1
                raise fault
            self.stats.writes += 1
            self.stats.write_bytes += size
            self._maybe_start_gc()
        finally:
            if tagged:
                self._free_tags += 1
                self._arb_pump()
            self._sqs[q].release()

    # -- stages ------------------------------------------------------------

    def _reserve_ctrl_lane(self, q: int, overhead: float, size: int, ctx=None) -> float:
        """FIFO-reserve queue ``q``'s controller lane; return clear time."""
        service = overhead + size * self.profile.ctrl_byte_cost
        lanes = self._ctrl_lanes
        start = max(self.sim.now, lanes[q])
        lanes[q] = start + service
        self.stats.controller_busy += service
        tr = self.tracer
        if tr is not None and tr.enabled:
            trace, tenant = ctx if ctx is not None else (None, None)
            tr.span(
                "ctrl", "ssd", self.trace_name, f"ctrl{q}",
                start, start + service,
                trace=trace, args={"tenant": tenant} if tenant else None,
            )
        return start + service
