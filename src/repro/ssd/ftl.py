"""Page-mapped flash translation layer.

Models the SSD-internal log-structured write path the paper describes in
§3.2: host writes append to pre-erased blocks, a page map tracks the
live location of each logical page, and garbage collection performs
read-merge-write of still-valid pages to replenish the free-block pool.
This is the mechanism behind write amplification and the
erase-before-write penalty; it is what makes small random overwrites
expensive and whole-file TRIMs (the LSM engine's deleted SSTables)
nearly free.

The FTL is purely bookkeeping — it computes *what* flash work an
operation implies (which channels program/copy/erase how many pages).
The device model charges the corresponding simulated time.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from .ftl_policy import make_ftl_policy
from .profiles import SsdProfile

__all__ = ["Ftl", "WritePlan", "GcMove"]

UNMAPPED = -1


@dataclass
class WritePlan:
    """Flash work implied by one host write.

    ``programs`` lists (channel, pages-to-program-there) chunks.  An op
    writes its pages in stripe-sized chunks across consecutive channels,
    so small ops land on one channel (one program latency) while large
    ops fan out — this is what amortizes program latency and makes write
    bandwidth climb with op size until the channels saturate.
    """

    programs: List[Tuple[int, int]]
    pages: int

    @property
    def program_pages(self) -> int:
        return sum(n for _c, n in self.programs)


@dataclass
class GcMove:
    """One garbage-collection step: evacuate + erase a victim block."""

    victim: int
    victim_channel: int
    copies: List[Tuple[int, int]]  # (destination channel, pages programmed)
    valid_pages: int


class Ftl:
    """Log-structured page-mapped FTL with pluggable GC/stream policy.

    ``policy`` (a name, class, or :class:`~repro.ssd.ftl_policy.FtlPolicy`
    instance; default from ``profile.ftl_policy``) owns victim selection
    and host write-stream routing; the mechanism here — page map, append
    streams, evacuate-and-erase — is policy-independent.
    """

    def __init__(self, profile: SsdProfile, seed: int = 0, policy=None):
        self.profile = profile
        self.rng = random.Random(seed)
        if policy is None:
            policy = getattr(profile, "ftl_policy", "greedy")
        self.policy = make_ftl_policy(policy)
        n_pages = profile.logical_pages
        n_blocks = profile.physical_blocks
        if n_blocks <= profile.gc_reserve_blocks + 2 * profile.channels:
            raise ValueError(
                f"profile {profile.name}: {n_blocks} blocks is too few for "
                f"{profile.channels} channels plus GC reserve"
            )
        #: logical page -> physical block holding its live copy
        self.page_to_block = np.full(n_pages, UNMAPPED, dtype=np.int32)
        #: physical block -> count of live pages
        self.block_valid = np.zeros(n_blocks, dtype=np.int32)
        #: physical block -> channel it was allocated on (-1 while free)
        self.block_channel = np.full(n_blocks, -1, dtype=np.int16)
        #: physical block -> logical pages appended to it (lazy: may list
        #: pages that were since overwritten; bounded by pages_per_block)
        self.block_pages: List[List[int]] = [[] for _ in range(n_blocks)]
        self.free_blocks: Deque[int] = deque(range(n_blocks))
        #: host page-write clock and per-block birth stamp (block age for
        #: cost-benefit scoring; maintained unconditionally — two integer
        #: stores per append)
        self.write_seq = 0
        self.block_seq = np.zeros(n_blocks, dtype=np.int64)
        #: per-stream, per-channel active block for host writes; GC keeps
        #: its own single stream of destination blocks
        n_streams = self.policy.n_streams
        self._host_active: List[List[Optional[int]]] = [
            [None] * profile.channels for _ in range(n_streams)
        ]
        self._host_fill: List[List[int]] = [
            [0] * profile.channels for _ in range(n_streams)
        ]
        self._host_cursor = [0] * n_streams
        self._gc_active: List[Optional[int]] = [None] * profile.channels
        self._gc_fill: List[int] = [0] * profile.channels
        self._gc_cursor = 0
        self._routed = n_streams > 1
        self._in_gc = False
        self.emergency_gcs = 0
        self.policy.bind(self)
        # Watermarks depend only on construction-time constants; they
        # are precomputed because gc_needed/host_starved sit on the
        # per-op hot path (consulted at every write completion).
        # Block-count floor keeps the GC trigger safely above the host
        # starvation threshold even on tiny test devices.
        self._gc_low_blocks = max(
            int(n_blocks * profile.gc_low_watermark),
            profile.gc_reserve_blocks + 2 * profile.channels,
        )
        self._gc_high_blocks = max(
            int(n_blocks * profile.gc_high_watermark),
            self._gc_low_blocks + 2 * profile.channels,
        )
        self._starve_blocks = profile.gc_reserve_blocks + 2

    # -- capacity state ------------------------------------------------------

    @property
    def free_fraction(self) -> float:
        """Fraction of physical blocks on the free list."""
        return len(self.free_blocks) / len(self.block_valid)

    @property
    def gc_needed(self) -> bool:
        """True when the pool has drained below the low watermark."""
        return len(self.free_blocks) <= self._gc_low_blocks

    @property
    def gc_satisfied(self) -> bool:
        """True when GC has refilled the pool to the high watermark."""
        return len(self.free_blocks) >= self._gc_high_blocks

    @property
    def host_starved(self) -> bool:
        """True when host writes must stall for GC (the write cliff).

        The last few free blocks are reserved for GC's own destination
        blocks; letting the host consume them would deadlock collection.
        """
        return len(self.free_blocks) <= self._starve_blocks

    @property
    def gc_spare_pages(self) -> int:
        """Upper bound on host pages writable before ``gc_needed`` flips.

        Free blocks above the low watermark, in pages.  An estimate, not
        a guarantee: host writes drain the pool one *active block* at a
        time, so the true crossing also depends on per-channel fill
        levels — callers that fast-forward must still re-check
        ``gc_needed`` after every analytic write.
        """
        spare = len(self.free_blocks) - self._gc_low_blocks
        return max(0, spare) * self.profile.pages_per_block

    def pages_until_gc(self) -> int:
        """Tighter projection of host pages writable before ``gc_needed``.

        Refines :attr:`gc_spare_pages` with the fill headroom left in
        the currently open host append blocks: those pages consume no
        free block, so they come on top of the spare-block budget.  GC's
        own active blocks are excluded (their fill is copy traffic, not
        host writes).  Still an upper bound — write striping can retire
        active blocks unevenly across channels — so fast-forwarding
        callers must re-check ``gc_needed`` after every analytic write;
        the point of the refinement is fewer prematurely ended epochs,
        not a guarantee.
        """
        per_block = self.profile.pages_per_block
        spare = len(self.free_blocks) - self._gc_low_blocks
        if spare < 0:
            return 0
        open_pages = 0
        for stream in range(len(self._host_active)):
            active = self._host_active[stream]
            fill = self._host_fill[stream]
            for chan in range(self.profile.channels):
                if active[chan] is not None:
                    open_pages += per_block - fill[chan]
        return spare * per_block + open_pages

    # -- address helpers -----------------------------------------------------

    def _page_range(self, offset: int, size: int) -> range:
        if size <= 0:
            raise ValueError(f"io size must be positive, got {size}")
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        page = self.profile.page_size
        first = offset // page
        last = (offset + size - 1) // page
        if last >= self.profile.logical_pages:
            raise ValueError(
                f"io [{offset}, {offset + size}) beyond logical capacity "
                f"{self.profile.logical_capacity}"
            )
        return range(first, last + 1)

    def read_channel(self, offset: int) -> int:
        """Channel serving the single page at ``offset``.

        Fast path for the epoch engines' dominant case (page-sized
        reads): one map lookup instead of :meth:`read_channels`'s
        per-channel accounting.  The caller guarantees the offset is
        within logical capacity.
        """
        p = offset // self.profile.page_size
        block = self.page_to_block[p]
        if block == UNMAPPED:
            return p % self.profile.channels
        return int(self.block_channel[block])

    def read_channels(self, offset: int, size: int) -> List[Tuple[int, int, int]]:
        """Map a host read to per-channel work.

        Returns (channel, pages, bytes) triples.  Bytes are the actual
        transfer sizes (sub-page reads move only the requested bytes off
        the flash register).  Unmapped pages read as if striped by LBA.
        """
        page = self.profile.page_size
        nchan = self.profile.channels
        pages = self._page_range(offset, size)
        per_chan_pages = [0] * nchan
        per_chan_bytes = [0] * nchan
        end = offset + size
        for p in pages:
            block = self.page_to_block[p]
            chan = int(self.block_channel[block]) if block != UNMAPPED else p % nchan
            lo = max(offset, p * page)
            hi = min(end, (p + 1) * page)
            per_chan_pages[chan] += 1
            per_chan_bytes[chan] += hi - lo
        return [
            (c, per_chan_pages[c], per_chan_bytes[c])
            for c in range(nchan)
            if per_chan_pages[c]
        ]

    # -- host writes ---------------------------------------------------------

    def host_write(self, offset: int, size: int) -> WritePlan:
        """Apply a host write to the map and return the flash work.

        Every touched logical page is rewritten in full (log-structured:
        no in-place update), so sub-page writes still program a whole
        page — the cost-per-byte penalty of small writes.  Pages are
        striped in ``stripe_pages`` chunks over consecutive channels
        starting from the write stream's rotating cursor, so concurrent
        small ops spread across channels while one large op parallelizes
        internally.  Multi-stream policies route the whole op to one
        stream (op-granularity separation, as NVMe write streams do).
        """
        pages = self._page_range(offset, size)
        stream = self.policy.route(self, pages) if self._routed else 0
        programs = [0] * self.profile.channels
        nchan = self.profile.channels
        stripe = self.profile.stripe_pages
        cursor = self._host_cursor
        start = cursor[stream]
        cursor[stream] = (start + 1) % nchan
        for i, p in enumerate(pages):
            chan = (start + i // stripe) % nchan
            self._append_page(p, gc=False, channel=chan, stream=stream)
            programs[chan] += 1
        if self._routed:
            self.policy.note_host_write(self, pages)
        return WritePlan(
            programs=[(c, n) for c, n in enumerate(programs) if n],
            pages=len(pages),
        )

    def trim(self, offset: int, size: int) -> int:
        """Invalidate a logical range (file deletion). Returns pages freed."""
        freed = 0
        for p in self._page_range(offset, size):
            block = self.page_to_block[p]
            if block != UNMAPPED:
                self.block_valid[block] -= 1
                self.page_to_block[p] = UNMAPPED
                freed += 1
        return freed

    def _append_page(
        self, logical_page: int, gc: bool, channel: int, stream: int = 0
    ) -> int:
        """Append one logical page to ``channel``'s active block.

        Invalidates the previous copy.  Returns the channel (for
        symmetry with callers that compute it).
        """
        old = self.page_to_block[logical_page]
        if old != UNMAPPED:
            self.block_valid[old] -= 1
        if gc:
            active, fill = self._gc_active, self._gc_fill
        else:
            active, fill = self._host_active[stream], self._host_fill[stream]
            self.write_seq += 1
        block = active[channel]
        if block is None or fill[channel] >= self.profile.pages_per_block:
            block = self._allocate_block(channel)
            active[channel] = block
            fill[channel] = 0
        self.page_to_block[logical_page] = block
        self.block_valid[block] += 1
        self.block_pages[block].append(logical_page)
        fill[channel] += 1
        return channel

    def _allocate_block(self, channel: int) -> int:
        if not self.free_blocks:
            # Emergency: evacuate synchronously so the write can proceed.
            # The device-level flow control (host writes stall while
            # ``host_starved``) is sized to make this unreachable; count
            # it so tests can assert the background GC keeps up.
            if self._in_gc:
                raise RuntimeError(
                    "FTL exhausted: GC needs a destination block but the "
                    "free pool is empty (reserve misconfigured)"
                )
            self.emergency_gcs += 1
            move = self.collect_victim()
            if move is None:
                raise RuntimeError("FTL out of space: no GC victim available")
        block = self.free_blocks.popleft()
        self.block_channel[block] = channel
        self.block_pages[block] = []
        self.block_seq[block] = self.write_seq
        return block

    # -- garbage collection ----------------------------------------------------

    def active_blocks(self) -> List[Optional[int]]:
        """All blocks currently open for appends (never GC victims)."""
        out: List[Optional[int]] = []
        for lane in self._host_active:
            out.extend(lane)
        out.extend(self._gc_active)
        return out

    def pick_victim(self) -> Optional[int]:
        """Policy-chosen victim: the next closed block GC should evacuate."""
        return self.policy.select_victim(self)

    def collect_victim(self) -> Optional[GcMove]:
        """Evacuate and erase the best victim block.

        The map is updated immediately; the device model charges the
        corresponding channel time afterwards.  Returns None when no
        victim exists.
        """
        victim = self.pick_victim()
        if victim is None:
            return None
        victim_channel = int(self.block_channel[victim])
        # Mark the victim as in-evacuation so re-entrant victim picks
        # (GC allocating its own destination blocks) cannot select it.
        self.block_channel[victim] = -2
        self._in_gc = True
        copies = [0] * self.profile.channels
        moved = 0
        nchan = self.profile.channels
        stripe = self.profile.stripe_pages
        start = self._gc_cursor
        self._gc_cursor = (start + 1) % nchan
        try:
            for p in self.block_pages[victim]:
                if self.page_to_block[p] == victim:  # still live here
                    chan = (start + moved // stripe) % nchan
                    self._append_page(p, gc=True, channel=chan)
                    copies[chan] += 1
                    moved += 1
        finally:
            self._in_gc = False
        # Erase: back to the free pool.
        self.block_valid[victim] = 0
        self.block_channel[victim] = -1
        self.block_pages[victim] = []
        self.free_blocks.append(victim)
        return GcMove(
            victim=victim,
            victim_channel=victim_channel,
            copies=[(c, n) for c, n in enumerate(copies) if n],
            valid_pages=moved,
        )

    # -- preconditioning --------------------------------------------------------

    def precondition(self, age_factor: float = 2.0) -> None:
        """Bring the device to its aged steady state, instantly.

        Fills the logical space in LBA order (so sequential reads stripe
        evenly across channels, matching a freshly streamed device), then
        ages the device with ``age_factor`` × logical-capacity worth of
        uniform random page overwrites, running GC as a real device
        would.  This converges the per-block valid-count distribution to
        the greedy-GC steady state so write workloads see realistic
        (finite!) write amplification from their first IO.
        """
        if age_factor < 0:
            raise ValueError(f"age_factor {age_factor} must be >= 0")
        n_pages = self.profile.logical_pages
        nchan = self.profile.channels
        stripe = self.profile.stripe_pages
        for p in range(n_pages):
            # LBA-ordered fill, striped so sequential reads parallelize.
            self._append_page(p, gc=False, channel=(p // stripe) % nchan)
            if self.gc_needed:
                self._sync_gc()
        for i in range(int(n_pages * age_factor)):
            chan = (self._host_cursor[0] + i) % nchan
            self._append_page(self.rng.randrange(n_pages), gc=False, channel=chan)
            if self.gc_needed:
                self._sync_gc()
        self._sync_gc()
        self.emergency_gcs = 0

    def _sync_gc(self) -> None:
        """Run GC to the high watermark with no simulated time cost."""
        while not self.gc_satisfied:
            if self.collect_victim() is None:  # pragma: no cover - defensive
                break
