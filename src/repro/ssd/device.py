"""Structural SSD performance model.

The device is a small queueing network in simulated time:

- an **NCQ** admission semaphore (queue depth 32, as in every paper
  experiment);
- a **controller** stage — a single FIFO server whose per-op service is
  ``overhead + bytes * byte_cost``.  The fixed overhead caps IOP/s at
  small sizes (the paper's "processor bound by its controller and on-die
  logic"); the byte term models the SATA link/DMA;
- **C parallel channels** — each chunk of an op occupies one channel for
  ``access/program latency + bytes * byte_cost``.  Aggregate channel
  bandwidth caps throughput at large sizes (the "data channel"
  bottleneck).  Ops stripe page-wise across channels via the FTL, so
  reads land where their data lives and writes spread round-robin;
- an **FTL** (:mod:`repro.ssd.ftl`) whose garbage collection injects
  read-merge-write copy traffic and erase stalls under sustained
  overwrite — the erase-before-write penalty.

Because both bottleneck stages exist, IOP/s and bandwidth vary
non-linearly with op size (Fig 3), writes interfere with reads by
occupying channels for program latencies (Fig 4), and writes cost more
than reads with the gap narrowing at large sizes (Fig 6).

Stage queueing uses reservation timestamps rather than server processes:
an op reserves ``start = max(now, stage_free_at)`` and waits until its
finish time.  This is exact for FIFO deterministic servers and keeps the
event count per IO to a handful.

Because the stages are next-free-time accumulators, the common-case op
timeline is fully computable at submit: when an op is admitted with no
active fault window, no GC loop running, and an NCQ slot free, the
device takes a **zero-coroutine fast path** — it books the controller
and channel reservations synchronously and schedules one completion
action at the analytic finish time (:meth:`Simulator.call_at`), with no
generator, no semaphore event, and no timeout.  Any condition that
makes the timeline stateful (fault windows, GC backpressure, NCQ
saturation, out-of-range IO) degrades that op to the original coroutine
pipeline, which remains the single source of truth for the slow path.
The two paths book identical reservations at identical times, so
same-seed runs are byte-identical with the fast path on or off
(``fast_path=False`` forces the coroutine path; the determinism suite
holds the equivalence).

When constructed with a :class:`~repro.faults.FaultPlan`, the device
consults a :class:`~repro.faults.FaultInjector` at op admission: stall
windows delay admission, degraded-bandwidth windows scale channel
service, latency windows pad completion, and error/corruption windows
fail the op (raised at completion time, after the op has occupied the
stages it reserved — a failing op still consumes device time).
"""

from __future__ import annotations

from functools import partial
from typing import Optional

from ..faults import CorruptionError, FaultInjector, FaultPlan
from ..sim import OK_RESULT, Event, Semaphore, Simulator
from .ftl import Ftl
from .profiles import SsdProfile
from .stats import SsdStats

__all__ = ["SsdDevice", "FluidPipeline"]


def _succeed_event(event: Event, _result) -> None:
    """Completion sink adapter: trigger the fast-path op's Event."""
    event.succeed()


class FluidPipeline:
    """Virtual controller/channel reservation state for one fluid epoch.

    A snapshot of the device's next-free-time accumulators that the
    fluid fast-forward engine (:mod:`repro.workload.epoch`) advances
    privately: chunk service plans produced by
    :meth:`SsdDevice.epoch_read`/:meth:`~SsdDevice.epoch_write` are
    reserved here at their *virtual dispatch* times, reproducing the
    FIFO queue-wait + service latency the real reservation timeline
    would have charged — without touching the live device state, so an
    abandoned epoch leaves nothing to unwind.
    """

    __slots__ = ("ctrl_free", "chan_free")

    def __init__(self, ctrl_free: float, chan_free):
        self.ctrl_free = ctrl_free
        self.chan_free = list(chan_free)

    def reserve(self, at: float, ctrl_service: float, services) -> float:
        """Reserve one chunk dispatched at ``at``; returns its finish time.

        Same shape as the device's ``_reserve_controller`` followed by
        ``_reserve_channel`` per (channel, service) pair: the chunk
        clears the controller FIFO first, then occupies its channels no
        earlier than that.
        """
        start = at if at > self.ctrl_free else self.ctrl_free
        ready = start + ctrl_service
        self.ctrl_free = ready
        finish = ready
        chan_free = self.chan_free
        for chan, service in services:
            s = chan_free[chan]
            if s < ready:
                s = ready
            f = s + service
            chan_free[chan] = f
            if f > finish:
                finish = f
        return finish


class SsdDevice:
    """A simulated SSD: submit reads/writes, get completion events."""

    def __init__(
        self,
        sim: Simulator,
        profile: SsdProfile,
        seed: int = 0,
        precondition: bool = True,
        age_factor: float = 2.0,
        fault_plan: Optional[FaultPlan] = None,
        tracer=None,
        fast_path: bool = True,
    ):
        self.sim = sim
        self.profile = profile
        #: admit common-case ops on the zero-coroutine analytic path;
        #: False forces every op through the coroutine pipeline (the
        #: equivalence knob the fast-path byte-identity tests turn)
        self.fast_path = fast_path
        self.ftl = Ftl(profile, seed=seed)
        self.stats = SsdStats()
        #: optional repro.obs Tracer recording controller/channel spans
        self.tracer = tracer
        #: called as ("read"|"write", size) whenever a host op finishes
        #: occupying the device (success or injected fault) — the raw
        #: op stream the VOP audit reconciles scheduler charges against.
        #: Plain strings keep repro.ssd free of repro.core imports.
        self.op_observer = None
        #: Chrome-trace process track name for this device's spans
        self.trace_name = f"ssd.{profile.name}"
        self.faults: Optional[FaultInjector] = (
            FaultInjector(fault_plan, name=profile.name) if fault_plan is not None else None
        )
        self._ncq = Semaphore(sim, profile.queue_depth, name=f"{profile.name}.ncq")
        self._ctrl_free_at = 0.0
        self._chan_free_at = [0.0] * profile.channels
        self._gc_running = False
        self._gc_progress: Event = sim.event()
        if precondition:
            self.ftl.precondition(age_factor=age_factor)

    # -- public IO interface ---------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """NCQ depth (max in-flight host ops)."""
        return self.profile.queue_depth

    @property
    def in_flight(self) -> int:
        """Currently outstanding host ops."""
        return self.profile.queue_depth - self._ncq.value

    @property
    def gc_running(self) -> bool:
        """True while the background GC loop owns channel time."""
        return self._gc_running

    def read(self, offset: int, size: int, ctx=None) -> Event:
        """Submit a read; the returned event triggers on completion.

        ``ctx`` is an optional ``(trace_id, tenant)`` pair attached to
        the op's controller/channel spans when a tracer is installed;
        it never influences execution.
        """
        finish = self._admit_fast_read(offset, size, ctx)
        if finish is None:
            return self.sim.process(self._do_read(offset, size, ctx))
        done = Event(self.sim)
        self.sim.call_at(finish, self._finish_fast_read, (_succeed_event, done, size))
        return done

    def write(self, offset: int, size: int, ctx=None) -> Event:
        """Submit a write; the returned event triggers on completion."""
        finish = self._admit_fast_write(offset, size, ctx)
        if finish is None:
            return self.sim.process(self._do_write(offset, size, ctx))
        done = Event(self.sim)
        self.sim.call_at(finish, self._finish_fast_write, (_succeed_event, done, size))
        return done

    def submit(self, is_read: bool, offset: int, size: int, ctx, callback, cb_arg) -> None:
        """Slim submission: completion arrives as ``callback(cb_arg, result)``.

        The scheduler's dispatch path.  On the fast path no Event (and
        no Process) is allocated at all: the single scheduled finish
        action invokes the callback directly with the shared
        :data:`~repro.sim.OK_RESULT`.  The fallback degrades to the
        coroutine pipeline and hands its :class:`Process` to the same
        callback (a Process exposes the same ``ok``/``value`` shape, and
        carries the fault when the op failed).
        """
        if is_read:
            finish = self._admit_fast_read(offset, size, ctx)
            if finish is not None:
                self.sim.call_at(finish, self._finish_fast_read, (callback, cb_arg, size))
                return
            proc = self.sim.process(self._do_read(offset, size, ctx))
        else:
            finish = self._admit_fast_write(offset, size, ctx)
            if finish is not None:
                self.sim.call_at(finish, self._finish_fast_write, (callback, cb_arg, size))
                return
            proc = self.sim.process(self._do_write(offset, size, ctx))
        proc.callbacks.append(partial(callback, cb_arg))

    def trim(self, offset: int, size: int) -> None:
        """Invalidate a logical range (instant, as TRIM effectively is)."""
        self.ftl.trim(offset, size)
        self.stats.trims += 1

    # -- epoch fast-forward (analytic accounting, no events) ----------------------
    #
    # During a quiet steady-state epoch the runner (repro.workload.epoch)
    # skips the event loop entirely and accounts each op here: same
    # stats counters and FTL mutations as the zero-coroutine fast path,
    # but applied synchronously with no NCQ slot, no reservation
    # timeline, and no completion action.  Valid only while the device
    # is idle (nothing in flight, no GC), where an op's latency equals
    # its own service time because every stage queue is empty.
    #
    # Fluid (stable-backlog) epochs call the same two hooks with a
    # ``pipeline`` (see :meth:`fluid_pipeline`): the stats counters and
    # FTL page-map / aging effects are booked identically, but instead
    # of an idle latency the hook returns the chunk's *service plan* —
    # ``(ctrl_service, [(channel, service), ...])`` — which the fluid
    # engine reserves against the virtual pipeline at the chunk's DDRR
    # dispatch time.  Count and byte effects are therefore exact in
    # both regimes; only the latency model differs (idle vs queued).

    def epoch_read(self, offset: int, size: int, pipeline=None):
        """Account one epoch read.

        Without ``pipeline``: quiet-epoch form, returns the idle-device
        latency.  With ``pipeline``: fluid-epoch form, returns the
        ``(ctrl_service, services)`` plan for
        :meth:`FluidPipeline.reserve` (stats booked here either way).
        """
        profile = self.profile
        stats = self.stats
        latency = profile.ctrl_overhead_read + size * profile.ctrl_byte_cost
        stats.controller_busy += latency
        stats.reads += 1
        stats.read_bytes += size
        page = profile.page_size
        byte_cost = profile.read_byte_cost
        if (offset % page) + size <= page:
            # Single-page read: one channel, transfer = requested bytes.
            service = profile.read_access + size * byte_cost
            stats.channel_busy += service
            if pipeline is not None:
                return latency, ((self.ftl.read_channel(offset), service),)
            return latency + service
        access = profile.read_access
        if pipeline is not None:
            services = []
            for chan, _pages, nbytes in self.ftl.read_channels(offset, size):
                service = access + nbytes * byte_cost
                stats.channel_busy += service
                services.append((chan, service))
            return latency, services
        longest = 0.0
        for _chan, _pages, nbytes in self.ftl.read_channels(offset, size):
            service = access + nbytes * byte_cost
            stats.channel_busy += service
            if service > longest:
                longest = service
        return latency + longest

    def epoch_write(self, offset: int, size: int, pipeline=None):
        """Account one epoch write.

        Applies the write to the FTL page map exactly as the event-driven
        path would, so GC-onset timing stays faithful across an epoch —
        the runner checks ``ftl.gc_needed`` after each analytic write and
        falls back to event-by-event mode when the watermark crosses.
        Returns the idle-device latency, or (with ``pipeline``) the
        chunk's ``(ctrl_service, services)`` plan — see
        :meth:`epoch_read`.
        """
        profile = self.profile
        stats = self.stats
        latency = profile.ctrl_overhead_write + size * profile.ctrl_byte_cost
        stats.controller_busy += latency
        prog = profile.prog_latency
        page_cost = profile.page_size * profile.write_byte_cost
        if pipeline is not None:
            services = []
            for chan, pages in self.ftl.host_write(offset, size).programs:
                service = prog + pages * page_cost
                stats.channel_busy += service
                services.append((chan, service))
            stats.writes += 1
            stats.write_bytes += size
            return latency, services
        longest = 0.0
        for _chan, pages in self.ftl.host_write(offset, size).programs:
            service = prog + pages * page_cost
            stats.channel_busy += service
            if service > longest:
                longest = service
        stats.writes += 1
        stats.write_bytes += size
        return latency + longest

    def fluid_pipeline(self) -> FluidPipeline:
        """Virtual reservation state seeded from the live accumulators.

        The fluid engine advances this copy at virtual dispatch times;
        the live ``_ctrl_free_at``/``_chan_free_at`` stay untouched, so
        post-epoch event-driven IO sees exactly the stale-but-harmless
        accumulator values a quiet fast-forward would have left behind
        (``max(now, free_at)`` absorbs them).
        """
        return FluidPipeline(self._ctrl_free_at, self._chan_free_at)

    def maybe_collect(self) -> None:
        """Start the background GC loop if the watermarks call for it.

        Public poke for the epoch runner: it detects the watermark
        crossing analytically (between events, where no write completion
        exists to trigger GC) and kicks the loop after re-entering
        event-by-event mode.
        """
        self._maybe_start_gc()

    # -- zero-coroutine fast path -------------------------------------------------

    def _admit_fast_read(self, offset: int, size: int, ctx) -> Optional[float]:
        """Admit a read analytically; returns its finish time, or None.

        None means the op's timeline is stateful — a fault window is
        active, the GC loop is reserving channel time, the NCQ is
        saturated, or the range is invalid (the coroutine path owns the
        failure semantics) — and nothing was reserved.  On success the
        op holds an NCQ slot plus exactly the controller/channel
        reservations the coroutine path would have booked at this
        instant.
        """
        if self._gc_running or not self.fast_path:
            return None
        faults = self.faults
        if faults is not None and not faults.quiescent(self.sim.now):
            return None
        profile = self.profile
        if offset < 0 or size <= 0 or offset + size > profile.logical_capacity:
            return None
        if not self._ncq.try_acquire():
            return None
        ready = self._reserve_controller(profile.ctrl_overhead_read, size, ctx)
        finish = ready
        access = profile.read_access
        byte_cost = profile.read_byte_cost
        reserve = self._reserve_channel
        for chan, _pages, nbytes in self.ftl.read_channels(offset, size):
            t = reserve(ready, chan, access + nbytes * byte_cost, ctx)
            if t > finish:
                finish = t
        # The coroutine path sleeps `finish - now`, landing on
        # now + (finish - now) — associate the same way so fast-path
        # completions are bitwise-identical to the fallback's.
        now = self.sim.now
        return now + (finish - now)

    def _admit_fast_write(self, offset: int, size: int, ctx) -> Optional[float]:
        """Write twin of :meth:`_admit_fast_read` (adds the GC checks)."""
        if self._gc_running or not self.fast_path:
            return None
        ftl = self.ftl
        if ftl.host_starved:
            return None
        faults = self.faults
        if faults is not None and not faults.quiescent(self.sim.now):
            return None
        profile = self.profile
        if offset < 0 or size <= 0 or offset + size > profile.logical_capacity:
            return None
        if not self._ncq.try_acquire():
            return None
        ready = self._reserve_controller(profile.ctrl_overhead_write, size, ctx)
        finish = ready
        prog = profile.prog_latency
        page_cost = profile.page_size * profile.write_byte_cost
        reserve = self._reserve_channel
        for chan, pages in ftl.host_write(offset, size).programs:
            t = reserve(ready, chan, prog + pages * page_cost, ctx)
            if t > finish:
                finish = t
        # Same float association as the fallback's timeout (see read).
        now = self.sim.now
        return now + (finish - now)

    def _finish_fast_read(self, arg) -> None:
        """One-shot completion for a fast-path read.

        Mirrors the coroutine epilogue exactly: observer, stats, NCQ
        release (waking any waiter before the consumer runs), then the
        completion delivery.
        """
        deliver, sink, size = arg
        if self.op_observer is not None:
            self.op_observer("read", size)
        stats = self.stats
        stats.reads += 1
        stats.read_bytes += size
        self._ncq.release()
        deliver(sink, OK_RESULT)

    def _finish_fast_write(self, arg) -> None:
        """One-shot completion for a fast-path write (kicks GC first)."""
        deliver, sink, size = arg
        if self.op_observer is not None:
            self.op_observer("write", size)
        stats = self.stats
        stats.writes += 1
        stats.write_bytes += size
        self._maybe_start_gc()
        self._ncq.release()
        deliver(sink, OK_RESULT)

    # -- op execution ------------------------------------------------------------

    def _do_read(self, offset: int, size: int, ctx=None):
        yield self._ncq.acquire()
        try:
            # Faults are drawn at admission (windows apply at op
            # arrival) but raised at completion: a failing op still
            # occupies the controller and channels for its service.
            scale, extra, fault = yield from self._admit_faults(offset, size)
            ready = self._reserve_controller(
                self.profile.ctrl_overhead_read, size, ctx
            )
            finish = ready
            for chan, _pages, nbytes in self.ftl.read_channels(offset, size):
                service = (
                    self.profile.read_access
                    + nbytes * self.profile.read_byte_cost
                ) * scale
                finish = max(finish, self._reserve_channel(ready, chan, service, ctx))
            finish += extra
            if finish > self.sim.now:
                yield self.sim.timeout(finish - self.sim.now)
            if self.op_observer is not None:
                self.op_observer("read", size)
            if fault is not None:
                if isinstance(fault, CorruptionError):
                    self.stats.corrupt_reads += 1
                else:
                    self.stats.read_faults += 1
                raise fault
            self.stats.reads += 1
            self.stats.read_bytes += size
        finally:
            self._ncq.release()

    def _do_write(self, offset: int, size: int, ctx=None):
        yield self._ncq.acquire()
        try:
            # Flow control: stall while the free pool is down to the GC
            # reserve — the "write cliff" of a saturated SSD.  GC wakes
            # us after every reclaimed block.
            while self.ftl.host_starved:
                self._maybe_start_gc()
                yield self._gc_progress
            scale, extra, fault = yield from self._admit_faults(offset, size, write=True)
            ready = self._reserve_controller(
                self.profile.ctrl_overhead_write, size, ctx
            )
            plan = self.ftl.host_write(offset, size)
            finish = ready
            for chan, pages in plan.programs:
                service = (
                    self.profile.prog_latency
                    + pages * self.profile.page_size * self.profile.write_byte_cost
                ) * scale
                finish = max(finish, self._reserve_channel(ready, chan, service, ctx))
            finish += extra
            if finish > self.sim.now:
                yield self.sim.timeout(finish - self.sim.now)
            if self.op_observer is not None:
                self.op_observer("write", size)
            if fault is not None:
                # The FTL mapping above stands: a failed program may
                # leave torn pages behind, exactly like real media.
                self.stats.write_faults += 1
                raise fault
            self.stats.writes += 1
            self.stats.write_bytes += size
            self._maybe_start_gc()
        finally:
            self._ncq.release()

    def _admit_faults(self, offset: int, size: int, write: bool = False):
        """DES sub-generator: apply the fault plan at op admission.

        Waits out any active stall window, then returns the op's
        ``(service_scale, extra_latency, fault_or_None)`` under the
        windows active at the (post-stall) admission time.
        """
        if self.faults is None:
            return 1.0, 0.0, None
        stall_end = self.faults.stall_until(self.sim.now)
        if stall_end > self.sim.now:
            self.stats.stall_seconds += stall_end - self.sim.now
            yield self.sim.timeout(stall_end - self.sim.now)
        now = self.sim.now
        scale = self.faults.service_scale(now)
        extra = self.faults.extra_latency(now)
        if scale > 1.0:
            self.stats.degraded_ops += 1
        if extra > 0.0:
            self.stats.fault_delay_seconds += extra
        if write:
            fault = self.faults.draw_write_fault(now, offset, size)
        else:
            fault = self.faults.draw_read_fault(now, offset, size)
        return scale, extra, fault

    def _reserve_controller(self, overhead: float, size: int, ctx=None) -> float:
        """FIFO-reserve controller service; return when the op clears it.

        Reservation timestamps make stage occupancy known synchronously,
        so the span (start, finish) is recorded here rather than when
        the op's completion timeout fires.
        """
        service = overhead + size * self.profile.ctrl_byte_cost
        start = max(self.sim.now, self._ctrl_free_at)
        self._ctrl_free_at = start + service
        self.stats.controller_busy += service
        tr = self.tracer
        if tr is not None and tr.enabled:
            trace, tenant = ctx if ctx is not None else (None, None)
            tr.span(
                "ctrl", "ssd", self.trace_name, "ctrl", start, start + service,
                trace=trace, args={"tenant": tenant} if tenant else None,
            )
        return start + service

    def _reserve_channel(
        self, after: float, chan: int, service: float, ctx=None, label: str = "chan"
    ) -> float:
        """FIFO-reserve a channel no earlier than ``after``; return finish."""
        start = max(after, self._chan_free_at[chan])
        self._chan_free_at[chan] = start + service
        self.stats.channel_busy += service
        tr = self.tracer
        if tr is not None and tr.enabled:
            trace, tenant = ctx if ctx is not None else (None, None)
            tr.span(
                label, "ssd", self.trace_name, f"chan{chan}", start, start + service,
                trace=trace, args={"tenant": tenant} if tenant else None,
            )
        return start + service

    # -- garbage collection --------------------------------------------------------

    def _maybe_start_gc(self) -> None:
        if not self._gc_running and (self.ftl.gc_needed or self.ftl.host_starved):
            self._gc_running = True
            self.sim.process(self._gc_loop(), name=f"{self.profile.name}.gc")

    def _gc_loop(self):
        """Background GC: evacuate victims until the high watermark.

        Copy traffic and erases go through the same channel reservations
        as host IO, so GC contends with (and slows) the foreground — the
        paper's erase-before-write penalty made visible.
        """
        profile = self.profile
        try:
            while not self.ftl.gc_satisfied:
                move = self.ftl.collect_victim()
                if move is None:
                    break
                # Reserve the copy/erase work on the channels (delaying
                # queued foreground IO accordingly)...
                added = 0.0
                if move.valid_pages:
                    # Read the live pages off the victim's channel...
                    read_service = move.valid_pages * (
                        profile.read_access / 4  # sequential in-block reads pipeline
                        + profile.page_size * profile.read_byte_cost
                    )
                    self._reserve_channel(
                        self.sim.now, move.victim_channel, read_service,
                        label="gc.read",
                    )
                    added += read_service
                    # ...and program them on the GC active channels.
                    for chan, pages in move.copies:
                        service = (
                            profile.prog_latency
                            + pages * profile.page_size * profile.write_byte_cost
                        )
                        self._reserve_channel(self.sim.now, chan, service, label="gc.prog")
                        added += service
                # The erase itself stalls the victim's channel.
                self._reserve_channel(
                    self.sim.now, move.victim_channel, profile.erase_latency,
                    label="gc.erase",
                )
                added += profile.erase_latency
                self.stats.gc_runs += 1
                self.stats.gc_pages_copied += move.valid_pages
                self.stats.gc_blocks_erased += 1
                # ...but pace the loop by the aggregate work it injects,
                # not by FIFO completion: a real controller interleaves
                # GC with host IO rather than queueing one victim at a
                # time behind the entire host backlog.  Capacity stays
                # honest because the reservations above consume real
                # channel time either way.
                yield self.sim.timeout(added / profile.channels)
                self._signal_gc_progress()
        finally:
            self._gc_running = False
            self._signal_gc_progress()

    def _signal_gc_progress(self) -> None:
        done, self._gc_progress = self._gc_progress, self.sim.event()
        done.succeed()
