"""Structural SSD performance model.

The device is a small queueing network in simulated time:

- an **NCQ** admission semaphore (queue depth 32, as in every paper
  experiment);
- a **controller** stage — a single FIFO server whose per-op service is
  ``overhead + bytes * byte_cost``.  The fixed overhead caps IOP/s at
  small sizes (the paper's "processor bound by its controller and on-die
  logic"); the byte term models the SATA link/DMA;
- **C parallel channels** — each chunk of an op occupies one channel for
  ``access/program latency + bytes * byte_cost``.  Aggregate channel
  bandwidth caps throughput at large sizes (the "data channel"
  bottleneck).  Ops stripe page-wise across channels via the FTL, so
  reads land where their data lives and writes spread round-robin;
- an **FTL** (:mod:`repro.ssd.ftl`) whose garbage collection injects
  read-merge-write copy traffic and erase stalls under sustained
  overwrite — the erase-before-write penalty.

Because both bottleneck stages exist, IOP/s and bandwidth vary
non-linearly with op size (Fig 3), writes interfere with reads by
occupying channels for program latencies (Fig 4), and writes cost more
than reads with the gap narrowing at large sizes (Fig 6).

Stage queueing uses reservation timestamps rather than server processes:
an op reserves ``start = max(now, stage_free_at)`` and waits until its
finish time.  This is exact for FIFO deterministic servers and keeps the
event count per IO to a handful.

When constructed with a :class:`~repro.faults.FaultPlan`, the device
consults a :class:`~repro.faults.FaultInjector` at op admission: stall
windows delay admission, degraded-bandwidth windows scale channel
service, latency windows pad completion, and error/corruption windows
fail the op (raised at completion time, after the op has occupied the
stages it reserved — a failing op still consumes device time).
"""

from __future__ import annotations

from typing import Optional

from ..faults import CorruptionError, FaultInjector, FaultPlan
from ..sim import Event, Semaphore, Simulator
from .ftl import Ftl
from .profiles import SsdProfile
from .stats import SsdStats

__all__ = ["SsdDevice"]


class SsdDevice:
    """A simulated SSD: submit reads/writes, get completion events."""

    def __init__(
        self,
        sim: Simulator,
        profile: SsdProfile,
        seed: int = 0,
        precondition: bool = True,
        age_factor: float = 2.0,
        fault_plan: Optional[FaultPlan] = None,
        tracer=None,
    ):
        self.sim = sim
        self.profile = profile
        self.ftl = Ftl(profile, seed=seed)
        self.stats = SsdStats()
        #: optional repro.obs Tracer recording controller/channel spans
        self.tracer = tracer
        #: called as ("read"|"write", size) whenever a host op finishes
        #: occupying the device (success or injected fault) — the raw
        #: op stream the VOP audit reconciles scheduler charges against.
        #: Plain strings keep repro.ssd free of repro.core imports.
        self.op_observer = None
        #: Chrome-trace process track name for this device's spans
        self.trace_name = f"ssd.{profile.name}"
        self.faults: Optional[FaultInjector] = (
            FaultInjector(fault_plan, name=profile.name) if fault_plan is not None else None
        )
        self._ncq = Semaphore(sim, profile.queue_depth, name=f"{profile.name}.ncq")
        self._ctrl_free_at = 0.0
        self._chan_free_at = [0.0] * profile.channels
        self._gc_running = False
        self._gc_progress: Event = sim.event()
        if precondition:
            self.ftl.precondition(age_factor=age_factor)

    # -- public IO interface ---------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """NCQ depth (max in-flight host ops)."""
        return self.profile.queue_depth

    @property
    def in_flight(self) -> int:
        """Currently outstanding host ops."""
        return self.profile.queue_depth - self._ncq.value

    def read(self, offset: int, size: int, ctx=None) -> Event:
        """Submit a read; the returned event triggers on completion.

        ``ctx`` is an optional ``(trace_id, tenant)`` pair attached to
        the op's controller/channel spans when a tracer is installed;
        it never influences execution.
        """
        return self.sim.process(self._do_read(offset, size, ctx))

    def write(self, offset: int, size: int, ctx=None) -> Event:
        """Submit a write; the returned event triggers on completion."""
        return self.sim.process(self._do_write(offset, size, ctx))

    def trim(self, offset: int, size: int) -> None:
        """Invalidate a logical range (instant, as TRIM effectively is)."""
        self.ftl.trim(offset, size)
        self.stats.trims += 1

    # -- op execution ------------------------------------------------------------

    def _do_read(self, offset: int, size: int, ctx=None):
        yield self._ncq.acquire()
        try:
            # Faults are drawn at admission (windows apply at op
            # arrival) but raised at completion: a failing op still
            # occupies the controller and channels for its service.
            scale, extra, fault = yield from self._admit_faults(offset, size)
            ready = self._reserve_controller(
                self.profile.ctrl_overhead_read, size, ctx
            )
            finish = ready
            for chan, _pages, nbytes in self.ftl.read_channels(offset, size):
                service = (
                    self.profile.read_access
                    + nbytes * self.profile.read_byte_cost
                ) * scale
                finish = max(finish, self._reserve_channel(ready, chan, service, ctx))
            finish += extra
            if finish > self.sim.now:
                yield self.sim.timeout(finish - self.sim.now)
            if self.op_observer is not None:
                self.op_observer("read", size)
            if fault is not None:
                if isinstance(fault, CorruptionError):
                    self.stats.corrupt_reads += 1
                else:
                    self.stats.read_faults += 1
                raise fault
            self.stats.reads += 1
            self.stats.read_bytes += size
        finally:
            self._ncq.release()

    def _do_write(self, offset: int, size: int, ctx=None):
        yield self._ncq.acquire()
        try:
            # Flow control: stall while the free pool is down to the GC
            # reserve — the "write cliff" of a saturated SSD.  GC wakes
            # us after every reclaimed block.
            while self.ftl.host_starved:
                self._maybe_start_gc()
                yield self._gc_progress
            scale, extra, fault = yield from self._admit_faults(offset, size, write=True)
            ready = self._reserve_controller(
                self.profile.ctrl_overhead_write, size, ctx
            )
            plan = self.ftl.host_write(offset, size)
            finish = ready
            for chan, pages in plan.programs:
                service = (
                    self.profile.prog_latency
                    + pages * self.profile.page_size * self.profile.write_byte_cost
                ) * scale
                finish = max(finish, self._reserve_channel(ready, chan, service, ctx))
            finish += extra
            if finish > self.sim.now:
                yield self.sim.timeout(finish - self.sim.now)
            if self.op_observer is not None:
                self.op_observer("write", size)
            if fault is not None:
                # The FTL mapping above stands: a failed program may
                # leave torn pages behind, exactly like real media.
                self.stats.write_faults += 1
                raise fault
            self.stats.writes += 1
            self.stats.write_bytes += size
            self._maybe_start_gc()
        finally:
            self._ncq.release()

    def _admit_faults(self, offset: int, size: int, write: bool = False):
        """DES sub-generator: apply the fault plan at op admission.

        Waits out any active stall window, then returns the op's
        ``(service_scale, extra_latency, fault_or_None)`` under the
        windows active at the (post-stall) admission time.
        """
        if self.faults is None:
            return 1.0, 0.0, None
        stall_end = self.faults.stall_until(self.sim.now)
        if stall_end > self.sim.now:
            self.stats.stall_seconds += stall_end - self.sim.now
            yield self.sim.timeout(stall_end - self.sim.now)
        now = self.sim.now
        scale = self.faults.service_scale(now)
        extra = self.faults.extra_latency(now)
        if scale > 1.0:
            self.stats.degraded_ops += 1
        if extra > 0.0:
            self.stats.fault_delay_seconds += extra
        if write:
            fault = self.faults.draw_write_fault(now, offset, size)
        else:
            fault = self.faults.draw_read_fault(now, offset, size)
        return scale, extra, fault

    def _reserve_controller(self, overhead: float, size: int, ctx=None) -> float:
        """FIFO-reserve controller service; return when the op clears it.

        Reservation timestamps make stage occupancy known synchronously,
        so the span (start, finish) is recorded here rather than when
        the op's completion timeout fires.
        """
        service = overhead + size * self.profile.ctrl_byte_cost
        start = max(self.sim.now, self._ctrl_free_at)
        self._ctrl_free_at = start + service
        self.stats.controller_busy += service
        tr = self.tracer
        if tr is not None and tr.enabled:
            trace, tenant = ctx if ctx is not None else (None, None)
            tr.span(
                "ctrl", "ssd", self.trace_name, "ctrl", start, start + service,
                trace=trace, args={"tenant": tenant} if tenant else None,
            )
        return start + service

    def _reserve_channel(
        self, after: float, chan: int, service: float, ctx=None, label: str = "chan"
    ) -> float:
        """FIFO-reserve a channel no earlier than ``after``; return finish."""
        start = max(after, self._chan_free_at[chan])
        self._chan_free_at[chan] = start + service
        self.stats.channel_busy += service
        tr = self.tracer
        if tr is not None and tr.enabled:
            trace, tenant = ctx if ctx is not None else (None, None)
            tr.span(
                label, "ssd", self.trace_name, f"chan{chan}", start, start + service,
                trace=trace, args={"tenant": tenant} if tenant else None,
            )
        return start + service

    # -- garbage collection --------------------------------------------------------

    def _maybe_start_gc(self) -> None:
        if not self._gc_running and (self.ftl.gc_needed or self.ftl.host_starved):
            self._gc_running = True
            self.sim.process(self._gc_loop(), name=f"{self.profile.name}.gc")

    def _gc_loop(self):
        """Background GC: evacuate victims until the high watermark.

        Copy traffic and erases go through the same channel reservations
        as host IO, so GC contends with (and slows) the foreground — the
        paper's erase-before-write penalty made visible.
        """
        profile = self.profile
        try:
            while not self.ftl.gc_satisfied:
                move = self.ftl.collect_victim()
                if move is None:
                    break
                # Reserve the copy/erase work on the channels (delaying
                # queued foreground IO accordingly)...
                added = 0.0
                if move.valid_pages:
                    # Read the live pages off the victim's channel...
                    read_service = move.valid_pages * (
                        profile.read_access / 4  # sequential in-block reads pipeline
                        + profile.page_size * profile.read_byte_cost
                    )
                    self._reserve_channel(
                        self.sim.now, move.victim_channel, read_service,
                        label="gc.read",
                    )
                    added += read_service
                    # ...and program them on the GC active channels.
                    for chan, pages in move.copies:
                        service = (
                            profile.prog_latency
                            + pages * profile.page_size * profile.write_byte_cost
                        )
                        self._reserve_channel(self.sim.now, chan, service, label="gc.prog")
                        added += service
                # The erase itself stalls the victim's channel.
                self._reserve_channel(
                    self.sim.now, move.victim_channel, profile.erase_latency,
                    label="gc.erase",
                )
                added += profile.erase_latency
                self.stats.gc_runs += 1
                self.stats.gc_pages_copied += move.valid_pages
                self.stats.gc_blocks_erased += 1
                # ...but pace the loop by the aggregate work it injects,
                # not by FIFO completion: a real controller interleaves
                # GC with host IO rather than queueing one victim at a
                # time behind the entire host backlog.  Capacity stays
                # honest because the reservations above consume real
                # channel time either way.
                yield self.sim.timeout(added / profile.channels)
                self._signal_gc_progress()
        finally:
            self._gc_running = False
            self._signal_gc_progress()

    def _signal_gc_progress(self) -> None:
        done, self._gc_progress = self._gc_progress, self.sim.event()
        done.succeed()
