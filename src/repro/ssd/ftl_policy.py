"""Pluggable FTL policies: victim selection and write-stream routing.

The FTL mechanism (:class:`repro.ssd.ftl.Ftl`) is fixed — page-mapped,
log-structured, GC by evacuate-and-erase — but two decisions inside it
are policy, and the literature (EagleTree; the multi-queue SSD modeling
papers in PAPERS.md) shows they move write amplification enough to
change provisioning conclusions:

- **victim selection** — which closed block GC evacuates next;
- **write-stream routing** — which append stream (set of per-channel
  active blocks) a host write lands in, separating hot from cold data
  so blocks die together.

Three built-in policies:

``greedy``
    Min-valid victim, single write stream.  This is the behavior the
    rest of the repo was calibrated against; it is the default and is
    bit-identical to the pre-policy FTL.
``costbenefit``
    Classic cost-benefit victim score ``(1 - u) / (1 + u) * age``
    (Rosenblum/LFS via EagleTree): prefers cool blocks whose remaining
    valid pages are unlikely to be invalidated soon over merely-emptiest
    blocks, trading copy work now for fewer re-copies later.
``hotcold``
    Greedy victim selection plus two write streams: ops whose pages were
    overwritten recently route to the hot stream, the rest to the cold
    stream.  Hot blocks then drain to near-empty before GC touches them.

Policies hold their own per-device state (bound via :meth:`FtlPolicy.bind`)
so the mechanism keeps zero overhead for policies that need none.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "FtlPolicy",
    "GreedyGcPolicy",
    "CostBenefitGcPolicy",
    "HotColdPolicy",
    "FTL_POLICIES",
    "make_ftl_policy",
]

#: sentinel valid-count that excludes a block from greedy victim choice
_INF_VALID = 1 << 30


class FtlPolicy:
    """Interface: victim selection + write-stream routing for one FTL."""

    #: registry key and report label
    name = "abstract"
    #: number of host append streams the FTL must maintain
    n_streams = 1

    def bind(self, ftl) -> None:
        """Attach per-device state; called once from ``Ftl.__init__``."""

    def select_victim(self, ftl) -> Optional[int]:
        """Choose the next GC victim block, or None when none exists."""
        raise NotImplementedError

    def route(self, ftl, pages: range) -> int:
        """Stream index for a host write covering ``pages``."""
        return 0

    def note_host_write(self, ftl, pages: range) -> None:
        """Observe a host write (for heat tracking); default no-op."""


def _greedy_victim(ftl) -> Optional[int]:
    """Min-valid closed block, excluding blocks currently being appended."""
    cost = np.where(ftl.block_channel >= 0, ftl.block_valid, _INF_VALID)
    for b in ftl.active_blocks():
        if b is not None:
            cost[b] = _INF_VALID
    victim = int(np.argmin(cost))
    if cost[victim] >= _INF_VALID:
        return None
    return victim


class GreedyGcPolicy(FtlPolicy):
    """Fewest-live-pages victim, one write stream (the calibrated default)."""

    name = "greedy"
    n_streams = 1

    def select_victim(self, ftl) -> Optional[int]:
        return _greedy_victim(ftl)


class CostBenefitGcPolicy(FtlPolicy):
    """Victim with the best ``benefit / cost = (1 - u) * age / (1 + u)``.

    ``u`` is the block's valid fraction (copy cost now); ``age`` is how
    many host page writes ago the block was opened (a proxy for how
    settled its remaining valid pages are).  Blocks still being appended
    are never victims.
    """

    name = "costbenefit"
    n_streams = 1

    def select_victim(self, ftl) -> Optional[int]:
        u = ftl.block_valid / float(ftl.profile.pages_per_block)
        age = (ftl.write_seq - ftl.block_seq).astype(np.float64)
        score = np.where(
            ftl.block_channel >= 0, (1.0 - u) * age / (1.0 + u), -1.0
        )
        for b in ftl.active_blocks():
            if b is not None:
                score[b] = -1.0
        victim = int(np.argmax(score))
        if score[victim] < 0.0:
            return None
        return victim


class HotColdPolicy(FtlPolicy):
    """Greedy victims plus hot/cold write-stream separation.

    A host write routes to the hot stream when its pages were last
    written within the most recent ``hot_window`` fraction of the
    logical space's worth of host page writes — i.e. the data is being
    overwritten fast.  Preconditioning traffic leaves the heat map cold,
    so a fresh device starts with everything in the cold stream.
    """

    name = "hotcold"
    n_streams = 2
    COLD, HOT = 0, 1

    def __init__(self, hot_window: float = 0.25):
        if hot_window <= 0:
            raise ValueError(f"hot_window {hot_window} must be positive")
        self.hot_window = hot_window
        self._last_seq = None
        self._window_pages = 0

    def bind(self, ftl) -> None:
        self._last_seq = np.zeros(ftl.profile.logical_pages, dtype=np.int64)
        self._window_pages = max(
            1, int(ftl.profile.logical_pages * self.hot_window)
        )

    def select_victim(self, ftl) -> Optional[int]:
        return _greedy_victim(ftl)

    def route(self, ftl, pages: range) -> int:
        newest = int(self._last_seq[pages.start : pages.stop].max())
        if newest > 0 and ftl.write_seq - newest < self._window_pages:
            return self.HOT
        return self.COLD

    def note_host_write(self, ftl, pages: range) -> None:
        self._last_seq[pages.start : pages.stop] = ftl.write_seq


FTL_POLICIES = {
    p.name: p for p in (GreedyGcPolicy, CostBenefitGcPolicy, HotColdPolicy)
}


def make_ftl_policy(policy) -> FtlPolicy:
    """Resolve a policy instance from a name, class, or instance."""
    if isinstance(policy, FtlPolicy):
        return policy
    if isinstance(policy, type) and issubclass(policy, FtlPolicy):
        return policy()
    try:
        return FTL_POLICIES[policy]()
    except KeyError:
        known = ", ".join(sorted(FTL_POLICIES))
        raise KeyError(f"unknown FTL policy {policy!r}; known: {known}") from None
