"""Minimal extent-based filesystem over the simulated SSD.

The persistence engine needs append-only files (WAL, SSTables) that can
be created, appended, read at arbitrary offsets, and deleted.  Real
Libra runs over ext4 with O_DIRECT; the paper folds filesystem overhead
into the device cost model, so this layer is deliberately thin: it maps
file-relative offsets onto logical device extents and turns deletes into
TRIMs (which is what makes LSM file deletion cheap for the FTL).

The filesystem issues IO through an *IO backend* — either the raw device
or a Libra scheduler — so the engine's IO can be interposed exactly as
in the paper (§5's system-call wrappers).
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Protocol, Tuple

from ..sim import Event, Simulator

__all__ = ["IoBackend", "RawBackend", "SimFile", "SimFilesystem", "OutOfSpace"]


class OutOfSpace(Exception):
    """Raised when the volume cannot satisfy an allocation."""


class IoBackend(Protocol):
    """What the filesystem needs from the IO layer below it.

    ``tag`` carries the Libra IO task tag (tenant + app-request +
    internal op); the raw backend ignores it.
    """

    def read(self, offset: int, size: int, tag=None) -> Event: ...

    def write(self, offset: int, size: int, tag=None) -> Event: ...

    def trim(self, offset: int, size: int) -> None: ...


class RawBackend:
    """Pass-through backend: straight to the device, no scheduling."""

    def __init__(self, device):
        self.device = device

    def read(self, offset: int, size: int, tag=None) -> Event:
        return self.device.read(offset, size)

    def write(self, offset: int, size: int, tag=None) -> Event:
        return self.device.write(offset, size)

    def trim(self, offset: int, size: int) -> None:
        self.device.trim(offset, size)


class SimFile:
    """An append-only file: a list of device extents plus a byte size."""

    __slots__ = ("fs", "name", "extents", "_starts", "size", "deleted")

    def __init__(self, fs: "SimFilesystem", name: str):
        self.fs = fs
        self.name = name
        self.extents: List[Tuple[int, int]] = []  # (device offset, length)
        self._starts: List[int] = []  # cumulative file offsets of extents
        self.size = 0
        self.deleted = False

    def __repr__(self) -> str:
        return f"<SimFile {self.name} size={self.size}>"

    def _check_live(self) -> None:
        if self.deleted:
            raise ValueError(f"IO on deleted file {self.name}")

    def append(self, size: int, tag=None) -> Event:
        """Append ``size`` bytes; returns the write-completion event."""
        self._check_live()
        if size <= 0:
            raise ValueError(f"append size must be positive, got {size}")
        segments = self.fs._extend(self, size)
        events = [self.fs.backend.write(off, length, tag=tag) for off, length in segments]
        self.size += size
        if len(events) == 1:
            return events[0]
        return self.fs.sim.all_of(events)

    def read(self, offset: int, size: int, tag=None) -> Event:
        """Read ``size`` bytes at file offset ``offset``."""
        self._check_live()
        if offset < 0 or size <= 0 or offset + size > self.size:
            raise ValueError(
                f"read [{offset}, {offset + size}) out of bounds for "
                f"{self.name} (size {self.size})"
            )
        events = [
            self.fs.backend.read(dev_off, length, tag=tag)
            for dev_off, length in self._map(offset, size)
        ]
        if len(events) == 1:
            return events[0]
        return self.fs.sim.all_of(events)

    def _map(self, offset: int, size: int) -> List[Tuple[int, int]]:
        """Translate a file-relative range to device (offset, length) runs."""
        out = []
        remaining = size
        idx = bisect.bisect_right(self._starts, offset) - 1
        pos = offset
        while remaining > 0:
            ext_start = self._starts[idx]
            dev_off, ext_len = self.extents[idx]
            within = pos - ext_start
            take = min(remaining, ext_len - within)
            out.append((dev_off + within, take))
            remaining -= take
            pos += take
            idx += 1
        return out


class SimFilesystem:
    """First-fit extent allocator over the device's logical space."""

    #: Files grow in allocation chunks to keep extents coarse.
    ALLOC_CHUNK = 1 * 1024 * 1024

    def __init__(self, sim: Simulator, backend: IoBackend, capacity: int, page_size: int = 4096):
        if capacity % page_size:
            raise ValueError("capacity must be page-aligned")
        self.sim = sim
        self.backend = backend
        self.page_size = page_size
        self.capacity = capacity
        self._free: List[Tuple[int, int]] = [(0, capacity)]  # sorted by offset
        self._files = {}
        self._seq = 0

    # -- file lifecycle --------------------------------------------------------

    def create(self, name: Optional[str] = None) -> SimFile:
        """Create an empty file (no space allocated until first append)."""
        if name is None:
            self._seq += 1
            name = f"file-{self._seq}"
        if name in self._files:
            raise ValueError(f"file {name!r} already exists")
        f = SimFile(self, name)
        self._files[name] = f
        return f

    def delete(self, f: SimFile) -> None:
        """Delete a file: TRIM and free all of its extents."""
        if f.deleted:
            return
        f.deleted = True
        for dev_off, length in f.extents:
            self.backend.trim(dev_off, length)
            self._release(dev_off, length)
        f.extents = []
        f._starts = []
        self._files.pop(f.name, None)

    @property
    def free_bytes(self) -> int:
        """Unallocated capacity."""
        return sum(length for _off, length in self._free)

    @property
    def file_count(self) -> int:
        return len(self._files)

    # -- allocation ----------------------------------------------------------------

    def _extend(self, f: SimFile, size: int) -> List[Tuple[int, int]]:
        """Grow ``f`` by ``size`` bytes; return device segments to write.

        The tail of the last extent is reused first (so sub-page appends
        land mid-page and incur the FTL's read-modify-write, like a real
        O_SYNC log tail).  Extra space is allocated in page-aligned
        chunks.
        """
        segments: List[Tuple[int, int]] = []
        remaining = size
        allocated = sum(length for _off, length in f.extents)
        slack = allocated - f.size
        if slack > 0:
            dev_off, ext_len = f.extents[-1]
            within = ext_len - slack
            take = min(remaining, slack)
            segments.append((dev_off + within, take))
            remaining -= take
        while remaining > 0:
            want = max(
                self.page_size,
                min(self.ALLOC_CHUNK, -(-remaining // self.page_size) * self.page_size),
            )
            dev_off, got = self._allocate(want)
            f._starts.append(sum(length for _off, length in f.extents))
            f.extents.append((dev_off, got))
            take = min(remaining, got)
            segments.append((dev_off, take))
            remaining -= take
        return segments

    def _allocate(self, want: int) -> Tuple[int, int]:
        """First fit: return (offset, length) of at most ``want`` bytes."""
        for i, (off, length) in enumerate(self._free):
            if length >= want:
                if length == want:
                    self._free.pop(i)
                else:
                    self._free[i] = (off + want, length - want)
                return off, want
        # No hole big enough: take the largest (allocation may split).
        if not self._free:
            raise OutOfSpace("filesystem full")
        i = max(range(len(self._free)), key=lambda j: self._free[j][1])
        off, length = self._free.pop(i)
        return off, length

    def _release(self, off: int, length: int) -> None:
        """Return an extent to the free list, coalescing neighbours."""
        i = bisect.bisect_left(self._free, (off, 0))
        self._free.insert(i, (off, length))
        # Coalesce with the next, then the previous.
        if i + 1 < len(self._free):
            o2, l2 = self._free[i + 1]
            if off + length == o2:
                self._free[i] = (off, length + l2)
                self._free.pop(i + 1)
        if i > 0:
            o0, l0 = self._free[i - 1]
            off, length = self._free[i]
            if o0 + l0 == off:
                self._free[i - 1] = (o0, l0 + length)
                self._free.pop(i)
