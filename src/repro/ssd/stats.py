"""Device-level counters.

Separated from the device so experiments can snapshot/reset them between
warm-up and measurement windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["SsdStats"]


@dataclass
class SsdStats:
    """Cumulative counters for one simulated SSD."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    trims: int = 0
    # GC activity
    gc_runs: int = 0
    gc_pages_copied: int = 0
    gc_blocks_erased: int = 0
    # Busy-time accounting (seconds of service rendered)
    controller_busy: float = 0.0
    channel_busy: float = 0.0
    # Injected-fault accounting (see repro.faults)
    read_faults: int = 0
    write_faults: int = 0
    corrupt_reads: int = 0
    degraded_ops: int = 0
    stall_seconds: float = 0.0
    fault_delay_seconds: float = 0.0

    def snapshot(self) -> "SsdStats":
        """Return a copy of the current counters."""
        return SsdStats(**vars(self))

    def delta(self, earlier: "SsdStats") -> "SsdStats":
        """Return counters accumulated since ``earlier``."""
        return SsdStats(
            **{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)}
        )

    def reset(self) -> None:
        """Zero every counter in place."""
        for key in vars(self):
            setattr(self, key, type(getattr(self, key))())

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reporting."""
        return dict(vars(self))

    def write_amplification(self, page_size: int) -> float:
        """Physical-to-host write ratio including GC page copies."""
        if self.write_bytes == 0:
            return 1.0
        gc_bytes = self.gc_pages_copied * page_size
        return (self.write_bytes + gc_bytes) / self.write_bytes
