"""Simulated SSD substrate: device model, FTL, profiles, filesystem."""

from .device import FluidPipeline, SsdDevice
from .filesystem import IoBackend, OutOfSpace, RawBackend, SimFile, SimFilesystem
from .ftl import Ftl, GcMove, WritePlan
from .ftl_policy import (
    FTL_POLICIES,
    CostBenefitGcPolicy,
    FtlPolicy,
    GreedyGcPolicy,
    HotColdPolicy,
    make_ftl_policy,
)
from .nvme import NvmeDevice
from .profiles import (
    PROFILES,
    SsdProfile,
    get_profile,
    intel320,
    nvme,
    oczvector,
    samsung840,
)
from .stats import SsdStats
from .surrogate import SurrogateDevice, SurrogateModel, fit_surrogate

__all__ = [
    "CostBenefitGcPolicy",
    "FTL_POLICIES",
    "FluidPipeline",
    "Ftl",
    "FtlPolicy",
    "GcMove",
    "GreedyGcPolicy",
    "HotColdPolicy",
    "IoBackend",
    "NvmeDevice",
    "OutOfSpace",
    "PROFILES",
    "RawBackend",
    "SimFile",
    "SimFilesystem",
    "SsdDevice",
    "SsdProfile",
    "SsdStats",
    "SurrogateDevice",
    "SurrogateModel",
    "WritePlan",
    "fit_surrogate",
    "get_profile",
    "intel320",
    "make_ftl_policy",
    "nvme",
    "oczvector",
    "samsung840",
]
