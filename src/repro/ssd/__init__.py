"""Simulated SSD substrate: device model, FTL, profiles, filesystem."""

from .device import SsdDevice
from .filesystem import IoBackend, OutOfSpace, RawBackend, SimFile, SimFilesystem
from .ftl import Ftl, GcMove, WritePlan
from .profiles import PROFILES, SsdProfile, get_profile, intel320, oczvector, samsung840
from .stats import SsdStats
from .surrogate import SurrogateDevice, SurrogateModel, fit_surrogate

__all__ = [
    "Ftl",
    "GcMove",
    "IoBackend",
    "OutOfSpace",
    "PROFILES",
    "RawBackend",
    "SimFile",
    "SimFilesystem",
    "SsdDevice",
    "SsdProfile",
    "SsdStats",
    "SurrogateDevice",
    "SurrogateModel",
    "fit_surrogate",
    "WritePlan",
    "get_profile",
    "intel320",
    "oczvector",
    "samsung840",
]
