"""Dynamic demand: the resource policy re-learns shifting request costs.

One tenant switches its workload mid-run from small-GET-dominated to
large-PUT-dominated.  The script samples Libra's learned cost profiles
and the resulting VOP allocation every second, showing the EWMA
profiles converging to the new amplified PUT cost (WAL + FLUSH +
COMPACT) and the allocation following the reservation × profile
product.

Run: python examples/dynamic_demand.py
"""

import random

from repro import RequestClass, Reservation, Simulator, StorageNode
from repro.core import InternalOp

KIB = 1024


def main() -> None:
    sim = Simulator()
    node = StorageNode(sim)
    node.add_tenant("acme", Reservation(gets=1500.0, puts=1500.0))

    rng = random.Random(11)
    phase = {"get_fraction": 0.9, "size": 4 * KIB}

    def worker():
        while sim.now < 60.0:
            key = rng.randrange(2000)
            if rng.random() < phase["get_fraction"]:
                yield from node.get("acme", key)
            else:
                yield from node.put("acme", key, phase["size"])

    def shifter():
        yield sim.timeout(30.0)
        # Demand flips: now 90% PUTs of 64 KiB objects.
        phase["get_fraction"] = 0.1
        phase["size"] = 64 * KIB
        print("--- t=30: workload shifted to write-heavy 64K PUTs ---")

    def sampler():
        print(f"{'t':>4} {'GET cost':>9} {'PUT direct':>11} "
              f"{'PUT+FLUSH+COMPACT':>18} {'alloc VOP/s':>12}")
        while sim.now < 60.0:
            yield sim.timeout(5.0)
            get_profile = node.tracker.profile("acme", RequestClass.GET)
            put_profile = node.tracker.profile("acme", RequestClass.PUT)
            print(
                f"{sim.now:>4.0f} {get_profile.total:>9.2f} {put_profile.direct:>11.2f} "
                f"{put_profile.total:>18.2f} {node.scheduler.allocation('acme'):>12.0f}"
            )

    for _ in range(4):
        sim.process(worker())
    sim.process(shifter())
    sim.process(sampler())
    sim.run(until=60.0)

    put_profile = node.tracker.profile("acme", RequestClass.PUT)
    print()
    print("final PUT cost breakdown (VOPs per normalized 1KB request):")
    print(f"  direct WAL IO : {put_profile.direct:.2f}")
    for op in (InternalOp.FLUSH, InternalOp.COMPACT):
        print(f"  {op.value:<13}: {put_profile.indirect.get(op, 0.0):.2f}")
    print(f"  total         : {put_profile.total:.2f}")


if __name__ == "__main__":
    main()
