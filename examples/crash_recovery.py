"""Durability: group-committed WAL and crash recovery.

Writes a burst of objects, crashes the engine (dropping both in-memory
tables), and recovers by scanning the write-ahead log — real sequential
read IO through Libra.  Everything durable comes back; the group-commit
batching that makes small synchronous PUTs affordable is printed too.

Run: python examples/crash_recovery.py
"""

import random

from repro import Reservation, Simulator, StorageNode

KIB = 1024


def main() -> None:
    sim = Simulator()
    node = StorageNode(sim)
    node.add_tenant("acct", Reservation(gets=1000, puts=1000))
    engine = node.engines["acct"]
    rng = random.Random(3)
    written = {}

    def writer(base):
        for i in range(40):
            key = base + i
            size = rng.choice([1, 2, 4]) * KIB
            written[key] = size
            yield from node.put("acct", key, size)

    procs = [sim.process(writer(base * 100)) for base in range(4)]
    sim.run(until=5.0)
    assert all(p.triggered for p in procs)

    wal = engine._wal
    print(f"wrote {len(written)} objects; live WAL holds "
          f"{wal.records} records in {wal.batches} group commits "
          f"({wal.records / max(wal.batches, 1):.1f} records/commit)")

    def crash_flow():
        replayed = yield from engine.crash_and_recover()
        print(f"crash! recovered {replayed} records from the WAL "
              f"({engine.stats.recoveries} recovery so far)")
        # Verify every durable object is still readable.
        missing = 0
        for key, size in written.items():
            result = yield from node.get("acct", key)
            if result != size:
                missing += 1
        print(f"post-recovery verification: {len(written) - missing}/"
              f"{len(written)} objects intact")

    proc = sim.process(crash_flow())
    sim.run(until=60.0)
    assert proc.triggered and proc.ok, getattr(proc, "value", None)

    # Range scan over a recovered region.
    def scan_flow():
        results = yield from node.scan("acct", 0, 50)
        print(f"scan [0, 50]: {len(results)} live keys, "
              f"{sum(s for _k, s in results) // KIB} KiB total")

    proc = sim.process(scan_flow())
    sim.run(until=70.0)
    assert proc.triggered and proc.ok


if __name__ == "__main__":
    main()
