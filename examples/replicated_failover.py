"""Replicated failover walkthrough: kill a node, lose nothing.

Three storage nodes host one tenant at replication factor 2: every
partition has a primary and one backup, and a PUT is acknowledged only
after the write-quorum backup has durably applied it.  A closed-loop
client writes through the network fabric; mid-run ``node0`` dies
outright.  The heartbeat detector notices the silence, promotes the
backup with the highest applied sequence number for each partition the
dead node led, and bumps the partition map version so the client
re-resolves.  Afterwards every acknowledged write is read back and
size-verified — the quorum ack means none of them went down with the
node.

Run: python examples/replicated_failover.py
"""

import random

from repro import NetConfig, Reservation, Simulator, StorageCluster

KIB = 1024
KILL_AT = 5.0
HORIZON = 12.0


def value_size(key: int) -> int:
    """Deterministic per-key size so the verifier can spot data loss."""
    return 2 * KIB + (key % 7) * KIB


def main() -> None:
    sim = Simulator()
    net = NetConfig(rf=2, heartbeat_interval=0.1, suspicion_timeout=0.5)
    cluster = StorageCluster(
        sim, n_nodes=3, partitions_per_tenant=6, seed=7, net=net
    )
    cluster.add_tenant("app", Reservation(gets=3000.0, puts=3000.0))
    client = cluster.make_client("app-client")

    print("=== placement (partition -> primary + backup) ===")
    for part in cluster.partition_map.partitions("app"):
        print(f"  p{part.index}: primary {part.replicas[0]}, "
              f"backup {part.replicas[1]}")

    rng = random.Random(7)
    acked = {}
    errors = [0]

    def writer(widx):
        while sim.now < HORIZON:
            key = rng.randrange(400)
            try:
                if key in acked and rng.random() < 0.3:
                    yield from client.get("app", key)
                else:
                    yield from client.put("app", key, value_size(key))
                    acked[key] = sim.now
            except Exception:
                errors[0] += 1
            yield sim.timeout(0.002 + rng.random() * 0.004)

    def killer():
        yield sim.timeout(KILL_AT)
        before = len(acked)
        print(f"\n=== t={sim.now:.2f}s: node0 killed "
              f"({before} distinct keys acknowledged so far) ===")
        cluster.kill_node("node0")

    for widx in range(4):
        sim.process(writer(widx))
    sim.process(killer())
    sim.run(until=HORIZON)

    for record in cluster.detector.failovers:
        print(f"  t={record.at:.2f}s: detector declared {record.node} dead "
              f"(+{record.at - KILL_AT:.2f}s after the kill)")
        for tenant, pid, new_primary, seq in record.promotions:
            print(f"    {tenant} p{pid} -> promoted {new_primary} "
                  f"at applied seq {seq}")
    print(f"  partition map version: {cluster.partition_map.version}")

    # -- verify: every acknowledged write must still read back ------------
    lost = []

    def verifier():
        for key in sorted(acked):
            try:
                size = yield from client.get("app", key)
            except Exception:
                size = None
            if size != value_size(key):
                lost.append(key)

    sim.process(verifier())
    sim.run(until=HORIZON + 30.0)
    cluster.stop()

    stats = cluster.total_stats("app")
    print(f"\n=== verdict after {HORIZON:.0f}s ===")
    print(f"  acked writes: {len(acked)} distinct keys, "
          f"client-surfaced errors: {errors[0]}")
    print(f"  backup applies (replica VOP work): {stats.repl_applies}")
    print(f"  lost acknowledged writes: {len(lost)}"
          + (f"  {sorted(lost)[:10]}" if lost else "  — zero, as the quorum ack promises"))


if __name__ == "__main__":
    main()
