"""Multi-tenant provisioning: insulation plus work conservation.

Three tenants share one SSD-backed node:

- ``gold``   reserves a large GET rate (latency-critical read service);
- ``silver`` reserves a moderate mixed rate;
- ``scav``   reserves nothing (best-effort batch scavenger) and simply
  soaks up whatever capacity the others leave unused.

The script shows the two Libra properties together: the paying tenants
hit their reservations even while the scavenger is hammering the
device, and when ``gold`` goes idle halfway through, its capacity is
immediately reused rather than left fallow.

Run: python examples/multi_tenant_provisioning.py
"""

import random

from repro import Reservation, Simulator, StorageNode

KIB = 1024


def closed_loop(sim, node, tenant, get_fraction, size, n_keys, stop_at, rng):
    def worker():
        while sim.now < stop_at:
            key = rng.randrange(n_keys)
            if rng.random() < get_fraction:
                yield from node.get(tenant, key)
            else:
                yield from node.put(tenant, key, size)
    return worker


def window_rates(node, tenant, t0, t1, snapshots):
    before, after = snapshots[(tenant, t0)], snapshots[(tenant, t1)]
    delta = after.delta(before)
    return (delta.get_units + delta.put_units) / (t1 - t0)


def main() -> None:
    sim = Simulator()
    node = StorageNode(sim)
    node.add_tenant("gold", Reservation(gets=4000.0, puts=500.0))
    node.add_tenant("silver", Reservation(gets=1500.0, puts=1500.0))
    node.add_tenant("scav", Reservation())  # best effort

    rng = random.Random(7)
    for _ in range(4):
        sim.process(closed_loop(sim, node, "gold", 0.9, 4 * KIB, 3000, 20.0, rng)())
        sim.process(closed_loop(sim, node, "silver", 0.5, 8 * KIB, 1500, 40.0, rng)())
        sim.process(closed_loop(sim, node, "scav", 0.2, 32 * KIB, 500, 40.0, rng)())

    snapshots = {}

    def snapshot_all(t):
        for tenant in ("gold", "silver", "scav"):
            snapshots[(tenant, t)] = node.stats(tenant).snapshot()

    snapshot_all(0.0)
    sim.run(until=10.0)
    snapshot_all(10.0)
    sim.run(until=20.0)  # gold's workers stop here
    snapshot_all(20.0)
    sim.run(until=40.0)
    snapshot_all(40.0)

    print("=== normalized request units/s (1 KB) ===")
    print(f"{'tenant':>8} {'reserved':>9} {'t=10-20':>9} {'t=20-40 (gold idle)':>20}")
    for tenant in ("gold", "silver", "scav"):
        reservation = node.tenants[tenant].reservation
        reserved = reservation.gets + reservation.puts
        busy = window_rates(node, tenant, 10.0, 20.0, snapshots)
        late = window_rates(node, tenant, 20.0, 40.0, snapshots)
        print(f"{tenant:>8} {reserved:>9.0f} {busy:>9.0f} {late:>20.0f}")

    scav_busy = window_rates(node, "scav", 10.0, 20.0, snapshots)
    scav_late = window_rates(node, "scav", 20.0, 40.0, snapshots)
    print()
    print(f"work conservation: the scavenger's throughput grew "
          f"{scav_late / max(scav_busy, 1e-9):.1f}x once gold went idle, "
          f"with zero reserved VOPs of its own.")


if __name__ == "__main__":
    main()
