"""Quickstart: a single provisioned tenant on one Libra storage node.

Builds the full stack (simulated SSD -> Libra scheduler -> LSM engine),
registers a tenant with an app-request reservation, issues some
GET/PUT traffic from a closed-loop client, and prints what the tenant
achieved alongside Libra's learned cost profile.

Run: python examples/quickstart.py
"""

import random

from repro import RequestClass, Reservation, Simulator, StorageNode

KIB = 1024


def main() -> None:
    sim = Simulator()
    node = StorageNode(sim)  # intel320-profile SSD, exact cost model
    node.add_tenant("alice", Reservation(gets=2000.0, puts=1000.0))

    rng = random.Random(42)
    n_keys = 2000

    def client(worker_id: int):
        # A 70:30 GET/PUT workload over 4 KiB objects.
        while sim.now < 20.0:
            key = rng.randrange(n_keys)
            if rng.random() < 0.7:
                yield from node.get("alice", key)
            else:
                yield from node.put("alice", key, 4 * KIB)

    for worker_id in range(4):
        sim.process(client(worker_id))

    sim.run(until=20.0)

    stats = node.stats("alice")
    profile_get = node.tracker.profile("alice", RequestClass.GET)
    profile_put = node.tracker.profile("alice", RequestClass.PUT)
    engine = node.engines["alice"]

    print("=== alice after 20 simulated seconds ===")
    print(f"requests: {stats.gets} GETs ({stats.get_units:.0f} x 1KB units), "
          f"{stats.puts} PUTs ({stats.put_units:.0f} units)")
    print(f"normalized throughput: {stats.get_units / 20:.0f} GET/s, "
          f"{stats.put_units / 20:.0f} PUT/s "
          f"(reserved {node.tenants['alice'].reservation.gets:.0f}/"
          f"{node.tenants['alice'].reservation.puts:.0f})")
    print(f"VOP allocation from the policy: {node.scheduler.allocation('alice'):.0f} VOP/s "
          f"of {node.capacity_vops:.0f} provisionable")
    print(f"learned cost profile (VOPs per normalized request): "
          f"GET={profile_get.total:.2f}, PUT={profile_put.total:.2f} "
          f"(direct {profile_put.direct:.2f} + background "
          f"{sum(profile_put.indirect.values()):.2f})")
    print(f"engine: {engine.stats.flushes} flushes, "
          f"{engine.stats.compactions} compactions, "
          f"{engine.version.file_count} live SSTables")
    print(f"device: {node.device.stats.reads} reads, "
          f"{node.device.stats.writes} writes, "
          f"write amplification "
          f"{node.device.stats.write_amplification(node.profile.page_size):.2f}")


if __name__ == "__main__":
    main()
