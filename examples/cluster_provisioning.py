"""Multi-node cluster: routing, reservation splitting, and rebalancing.

Two storage nodes host two tenants behind the simulated network
fabric (``repro.net``): requests leave a ``ClusterClient``, pay NIC
serialization and link latency, and arrive at each partition primary's
RPC endpoint.  With ``rf=2`` every partition also has a backup, so
acknowledged writes replicate before the client sees the ack and each
tenant's global PUT reservation is split across *both* replicas.

When one node's reservations outgrow its provisionable capacity, the
cluster redistributes local reservations into the other node's
headroom — the §2.1 higher-level response to Libra's overflow signal.

Run: python examples/cluster_provisioning.py
"""

import random

from repro import NetConfig, Reservation, Simulator, StorageCluster

KIB = 1024


def main() -> None:
    sim = Simulator()
    cluster = StorageCluster(
        sim, n_nodes=2, partitions_per_tenant=8, net=NetConfig(rf=2)
    )
    cluster.add_tenant("web", Reservation(gets=6000.0, puts=2000.0))
    cluster.add_tenant("batch", Reservation(gets=500.0, puts=3000.0))

    print("=== initial reservation split (normalized units/s) ===")
    print("    (GETs split by primary share; PUTs by replica share, so")
    print("     locals sum to rf x the global PUT reservation)")
    for name, node in cluster.nodes.items():
        for tenant in ("web", "batch"):
            local = node.policy.reservation(tenant)
            print(f"  {name} {tenant:>6}: GET {local.gets:.0f}, PUT {local.puts:.0f}")

    rng = random.Random(42)
    clients = {
        tenant: cluster.make_client(f"app.{tenant}") for tenant in ("web", "batch")
    }

    def driver(tenant, get_fraction, size, n_keys):
        client = clients[tenant]
        while sim.now < 15.0:
            key = rng.randrange(n_keys)
            if rng.random() < get_fraction:
                yield from client.get(tenant, key)
            else:
                yield from client.put(tenant, key, size)

    for _ in range(4):
        sim.process(driver("web", 0.8, 4 * KIB, 4000))
        sim.process(driver("batch", 0.1, 32 * KIB, 500))

    sim.run(until=15.0)

    print("\n=== after 15s of load through the fabric ===")
    for tenant in ("web", "batch"):
        total = cluster.total_stats(tenant)
        print(f"  {tenant:>6}: {total.gets} GETs + {total.puts} PUTs system-wide "
              f"(+{total.repl_applies} backup applies), split " + " / ".join(
                  f"{node.stats(tenant).gets + node.stats(tenant).puts}@{name}"
                  for name, node in cluster.nodes.items()))
    rpc = {name: svc.rpc.stats for name, svc in cluster.services.items()}
    print("  rpc round trips: " + ", ".join(
        f"{name} served {stats.served}" for name, stats in rpc.items()))
    print(f"  overflow notifications collected: {len(cluster.overflows)}")

    # Simulate a hotspot: pile web's reservation onto node0 and let the
    # cluster-level policy redistribute it.
    node0 = cluster.nodes["node0"]
    big = Reservation(gets=20_000.0, puts=5_000.0)
    node0.set_reservation("web", big)
    print("\n=== hotspot: web reserves 25k units/s on node0 alone ===")
    print(f"  node0 demand estimate: {node0.policy.total_demand:.0f} VOP/s "
          f"(capacity {node0.capacity_vops:.0f})")
    moves = cluster.redistribute_reservations()
    print(f"  redistribute_reservations() -> {moves} move(s)")
    for name, node in cluster.nodes.items():
        local = node.policy.reservation("web")
        print(f"  {name} web: GET {local.gets:.0f}, PUT {local.puts:.0f} "
              f"(node demand {node.policy.total_demand:.0f} VOP/s)")
    cluster.stop()


if __name__ == "__main__":
    main()
