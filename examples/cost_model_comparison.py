"""Cost-model shoot-out: why the VOP's non-linear cost curve matters.

Two tenants with *equal* allocations share a device: one issues small
(4 KiB) reads, the other large (128 KiB) reads.  Under Libra's exact
VOP cost model each gets an equal share of physical IO capability; the
size-blind ``fixed`` model charges both the same per op, so the
large-IOP tenant over-consumes.  The script prints both models'
per-tenant throughput ratios — the essence of Figures 8 and 9.

Run: python examples/cost_model_comparison.py
"""

from repro import OpKind, get_profile, make_cost_model, reference_calibration
from repro.core.capacity import REFERENCE_FLOORS
from repro.workload.iobench import DeviceEnv, TenantSpec, isolated_iops, run_raw_trial

KIB = 1024


def trial(cost_model_name: str):
    profile = get_profile("intel320")
    specs = [
        TenantSpec("small", 1.0, read_size=4 * KIB, write_size=4 * KIB),
        TenantSpec("large", 1.0, read_size=128 * KIB, write_size=128 * KIB),
    ]
    floor = REFERENCE_FLOORS["intel320"]
    result = run_raw_trial(
        profile,
        specs,
        duration=0.6,
        warmup=0.2,
        cost_model=cost_model_name,
        allocations={s.name: floor / 2 for s in specs},
        env=DeviceEnv(profile),
    )
    ratios = {}
    for name, tenant in result.tenants.items():
        size = tenant.spec.read_size
        expected = isolated_iops("intel320", OpKind.READ, size) / 2
        ratios[name] = tenant.iops_per_sec(result.duration) / expected
    return ratios


def main() -> None:
    calibration = reference_calibration("intel320")
    exact = make_cost_model("exact", calibration)
    fixed = make_cost_model("fixed", calibration)
    print("per-op cost in VOPs:")
    print(f"{'size':>6} {'exact':>8} {'fixed':>8}")
    for size in (4 * KIB, 32 * KIB, 128 * KIB):
        print(f"{size // KIB:>5}K {exact.cost(OpKind.READ, size):>8.1f} "
              f"{fixed.cost(OpKind.READ, size):>8.1f}")
    print()
    for model in ("exact", "fixed"):
        ratios = trial(model)
        mmr = min(ratios.values()) / max(ratios.values())
        print(f"{model:>6} model: small-IOP tenant ratio {ratios['small']:.2f}, "
              f"large-IOP tenant ratio {ratios['large']:.2f}  (MMR {mmr:.2f})")
    print()
    print("With the fixed model the 128K tenant pays 4K prices and starves "
          "the small tenant; the exact VOP model keeps the ratios equal.")


if __name__ == "__main__":
    main()
