"""Chaos: deterministic fault injection + failure handling, end to end.

A single tenant runs a closed-loop GET/PUT workload while a scripted
:class:`FaultPlan` turns the device hostile — transient read/write
errors, corrupt reads (caught by checksums and re-read), 4x degraded
bandwidth, and a full stall — and the engine is crashed and restarted
in the middle of it.  The node's retry/timeout machinery absorbs the
chaos: at the end, every *acknowledged* write reads back intact, and
the per-layer fault counters show what it took.

Because every random draw flows through seeded RNGs, running this
twice prints exactly the same numbers.

Run: python examples/chaos_recovery.py
"""

import random

from repro import Reservation, Simulator, StorageNode
from repro.faults import FaultKind, FaultPlan, FaultWindow, StorageFault
from repro.node import NodeConfig

KIB = 1024


def main() -> None:
    sim = Simulator()
    plan = (
        FaultPlan(seed=7)
        .add(FaultWindow(FaultKind.READ_ERROR, 4.0, 10.0, probability=0.02))
        .add(FaultWindow(FaultKind.WRITE_ERROR, 4.0, 10.0, probability=0.02))
        .add(FaultWindow(FaultKind.CORRUPT_READ, 4.0, 10.0, probability=0.02))
        .add(FaultWindow(FaultKind.DEGRADED_BW, 4.0, 10.0, slowdown=4.0))
        .add(FaultWindow(FaultKind.STALL, 6.0, 7.0))
    )
    node = StorageNode(
        sim,
        config=NodeConfig(request_timeout=0.5, max_retries=8),
        fault_plan=plan,
    )
    node.add_tenant("acct", Reservation(gets=1000, puts=1000))
    rng = random.Random(11)
    acked = {}
    surfaced = [0]

    def worker(widx: int):
        while sim.now < 14.0:
            key = rng.randrange(4000)
            size = 1 * KIB + (key % 4) * KIB  # size derivable from key
            try:
                if rng.random() < 0.5:
                    yield from node.get("acct", key)
                else:
                    yield from node.put("acct", key, size)
                    acked[key] = size  # only reached after the ack
            except StorageFault:
                surfaced[0] += 1

    def chaos_script():
        # Crash while the device is still healthy: recovery replays the
        # log in milliseconds and the tenant is back up before the fault
        # window opens at t=4 (recovering *through* a 2% error window is
        # hopeless here — a fragmented WAL turns every recovery-scan
        # chunk into dozens of device reads, each drawing its own fault).
        yield sim.timeout(2.0)
        torn = node.crash("acct")
        replayed = yield from node.restart("acct")
        print(f"t=2.0s crash: {torn} unacknowledged records torn off the "
              f"WAL tail, {replayed} acknowledged records replayed")

    for widx in range(4):
        sim.process(worker(widx))
    sim.process(chaos_script())
    sim.run(until=14.0)

    stats = node.stats("acct")
    dev = node.device.stats
    eng = node.engines["acct"].stats
    print(f"device injected: {dev.read_faults} read errors, "
          f"{dev.write_faults} write errors, {dev.corrupt_reads} corruptions, "
          f"{dev.stall_seconds:.1f}s of stall")
    print(f"engine absorbed: {eng.checksum_failures} checksum failures "
          f"({eng.read_retries} re-reads), {eng.flush_retries} flush retries, "
          f"{eng.compaction_aborts} compaction aborts")
    print(f"node absorbed:   {stats.retries} retries, {stats.timeouts} "
          f"timeouts, {stats.crash_waits} crash waits; "
          f"{surfaced[0]} requests surfaced errors to the app")

    # The contract: every acknowledged write is readable, faults and all.
    def verify():
        lost = 0
        for key, size in sorted(acked.items()):
            got = yield from node.get("acct", key)
            if got != size:
                lost += 1
        print(f"verification:    {len(acked) - lost}/{len(acked)} "
              f"acknowledged writes intact (lost: {lost})")
        assert lost == 0

    proc = sim.process(verify())
    sim.run(until=30.0)
    assert proc.triggered and proc.ok, getattr(proc, "value", None)
    node.stop()


if __name__ == "__main__":
    main()
