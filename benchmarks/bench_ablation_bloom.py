"""Ablation: Bloom filters vs the paper's GET amplification.

The paper's prototype runs without filters, so every eligible file
costs an index-block probe (§3.1).  This bench measures the per-GET
disk probes under a churn-heavy mixed workload with filters off
(paper-faithful) and on (LevelDB's later FilterPolicy), quantifying how
much amplification filters buy back — context for why Libra's
*tracking* of amplified cost matters even when engines mitigate it.
"""

import random

import pytest

from repro.core import LibraScheduler, make_cost_model, reference_calibration
from repro.engine import EngineConfig, LsmEngine
from repro.sim import Simulator
from repro.ssd import SimFilesystem, SsdDevice, SsdProfile

KIB = 1024
MIB = 1024 * 1024


def run_workload(bloom_bits: int, seed: int = 23):
    sim = Simulator()
    profile = SsdProfile(
        name="bloom-ablate", channels=8, logical_capacity=128 * MIB, overprovision=1.0
    )
    device = SsdDevice(sim, profile, seed=seed)
    scheduler = LibraScheduler(
        sim, device, make_cost_model("exact", reference_calibration("intel320"))
    )
    scheduler.register_tenant("t1", 30_000.0)
    fs = SimFilesystem(sim, scheduler, capacity=profile.logical_capacity)
    config = EngineConfig(
        memtable_bytes=256 * KIB,
        level1_bytes=1 * MIB,
        table_cache_entries=2,  # force index probes to hit disk
        bloom_bits_per_key=bloom_bits,
    )
    engine = LsmEngine(sim, fs, "t1", config)
    rng = random.Random(seed)
    n_keys = 4000
    done = {"gets": 0, "misses": 0}

    def worker():
        while sim.now < 20.0:
            key = rng.randrange(n_keys)
            if rng.random() < 0.5:
                result = yield from engine.get(key)
                done["gets"] += 1
                if result is None:
                    done["misses"] += 1
            else:
                yield from engine.put(key, 8 * KIB)

    for _ in range(8):
        sim.process(worker())
    sim.run(until=20.0)
    probes_per_get = engine.stats.index_probes / max(done["gets"], 1)
    disk_probes = engine.stats.index_probes - engine.stats.index_cache_hits
    disk_probes_per_get = disk_probes / max(done["gets"], 1)
    return {
        "gets": done["gets"],
        "probes_per_get": probes_per_get,
        "disk_probes_per_get": disk_probes_per_get,
        "bloom_skips": engine.stats.bloom_skips,
    }


@pytest.mark.figure
def test_ablation_bloom_filters(benchmark):
    def sweep():
        return {bits: run_workload(bits) for bits in (0, 10)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for bits, stats in results.items():
        print(
            f"bloom_bits={bits:>2}: {stats['gets']} GETs, "
            f"{stats['probes_per_get']:.2f} probes/GET, "
            f"{stats['disk_probes_per_get']:.2f} disk index reads/GET, "
            f"{stats['bloom_skips']} bloom skips"
        )
    without, with_bloom = results[0], results[10]
    # Filters skip real probes...
    assert with_bloom["bloom_skips"] > 0
    # ...and cut the disk index reads per GET.
    assert (
        with_bloom["disk_probes_per_get"] < without["disk_probes_per_get"] * 0.9
    )
