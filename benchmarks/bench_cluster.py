"""Bench: the cluster experiment (replication, node kill, failover).

Runs the clusterfig RF sweep — two tenants through ClusterClient
endpoints against a three-node cluster, node0 killed mid-run — and
asserts the replication contract: RF >= 2 loses zero acknowledged
writes and keeps serving after failover, RF = 1 visibly loses the dead
node's partitions, replication cost shows up in write amplification
and Libra's demand estimates, and two same-seed runs are
byte-identical.
"""

import pytest

from repro.experiments import clusterfig
from conftest import run_once


@pytest.mark.figure
def test_cluster_failover_sweep(benchmark, quick_mode):
    result = run_once(benchmark, clusterfig.run, quick=quick_mode)
    print()
    print(clusterfig.render(result))

    # The headline: with RF >= 2, every acknowledged write survived the
    # node kill — verified by reading each one back — while RF = 1 lost
    # the dead node's partitions outright.
    assert all(cell.verified for cell in result.cells)
    assert result.replicated_lost == 0
    rf1 = result.cell(1)
    assert sum(rf1.lost.values()) > 0

    # Availability: the replicated cells keep serving both tenants in
    # the settled post-kill window.
    for cell in result.cells:
        if cell.rf >= 2:
            for tenant, rate in cell.post_kill_rate.items():
                assert rate > 0, (cell.rf, tenant)

    # The detector noticed the silence and promoted backups for every
    # partition the dead node led (RF = 1 has no backups to promote).
    for cell in result.cells:
        assert cell.detection_s > 0, cell.rf
        if cell.rf >= 2:
            assert cell.promotions > 0, cell.rf
            assert cell.repl_applies > 0, cell.rf

    # The cost side: durable WAL records per acknowledged write grow
    # with RF, and the backup applies inflate Libra's demand estimates
    # — replication is visible to provisioning.
    amps = [result.cell(rf).write_amplification for rf in (1, 2, 3)]
    assert amps[0] < amps[1] < amps[2]
    assert amps[0] >= 1.0
    demands = [result.cell(rf).prekill_demand_vops for rf in (1, 2, 3)]
    assert demands[0] < demands[1]
    assert all(cell.rpc_round_trips > 0 for cell in result.cells)


@pytest.mark.figure
def test_cluster_two_runs_identical(benchmark):
    """Same seed, same cluster chaos: the outcome is byte-identical."""
    first = run_once(benchmark, clusterfig.run, quick=True)
    second = clusterfig.run(quick=True)
    assert first.fingerprint() == second.fingerprint()
