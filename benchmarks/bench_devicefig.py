"""Bench: the device sweep (NVMe vs SATA, FTL policies, overprovision).

Runs the devicefig grid — fig4-style interference plus the fig9
cost-model insulation check across {SATA, NVMe x1/x4/x8} x {greedy,
costbenefit, hotcold} x overprovision points — and asserts which paper
conclusions survive the device change: the mixed-workload interference
valley, the SATA-calibrated exact model's insulation, VOP audit
reconciliation on the NVMe stack, and epoch fast-forward agreement
with the event-by-event run.
"""

import pytest

from repro.experiments import devicefig
from conftest import run_once


@pytest.mark.figure
def test_device_sweep(benchmark, quick_mode):
    result = run_once(benchmark, devicefig.run, quick=quick_mode)
    print()
    print(devicefig.render(result))

    # Every cell produced sane metrics.
    for metrics in result.cells.values():
        assert metrics["read_vops"] > 0
        assert metrics["write_amp"] >= 1.0
        assert 0.0 < metrics["insulation"] <= 1.0

    # Queue scaling: the 8-queue NVMe device clears the SATA read
    # ceiling by a wide margin (per-queue controller lanes).
    sata_read = result.mean("read_vops", device="sata")
    nvme8_read = result.mean("read_vops", device="nvme x8")
    assert nvme8_read > 1.5 * sata_read

    # The interference valley persists on every queue architecture:
    # adding writers always costs the readers.
    for device, _ in devicefig.DEVICES:
        assert result.mean("valley", device=device) < 0.75, device

    # queues=1 NVMe is the SATA path: same structural model, same
    # throughput (within measurement noise of different trial seeds).
    sata_mix = result.mean("mix_vops", device="sata")
    nvme1_mix = result.mean("mix_vops", device="nvme x1")
    assert nvme1_mix == pytest.approx(sata_mix, rel=0.2)

    # The SATA-calibrated exact cost model still insulates tenants on
    # the NVMe architectures (the fig9 conclusion survives).
    for device, _ in devicefig.DEVICES:
        assert result.mean("insulation", device=device) > 0.5, device

    # More overprovisioning -> no worse write amplification, on average
    # across devices and policies.
    ops = sorted({op for (_, _, op) in result.cells})
    wa = [result.mean("write_amp", op=op) for op in ops]
    assert wa[-1] <= wa[0] * 1.05

    # The pinned NVMe legs: VOP accounting reconciles exactly, and the
    # hybrid fast-forward run agrees with the event-by-event run.
    assert result.audit["ok"], result.audit["flags"]
    assert result.audit["reconciliation"] == pytest.approx(1.0, abs=1e-9)
    assert all(result.ff_agree.values()), result.ff_agree
    assert result.ff_fraction > 0.5


@pytest.mark.figure
def test_device_sweep_parallel_byte_identical(benchmark, quick_mode):
    serial = devicefig.run(smoke=True, seed=31, jobs=1)
    fanned = run_once(benchmark, devicefig.run, smoke=True, seed=31, jobs=4)
    assert devicefig.render(serial) == devicefig.render(fanned)
