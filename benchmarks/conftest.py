"""Benchmark-suite configuration.

Every ``bench_figN.py`` regenerates one figure of the paper in quick
mode (set ``REPRO_FULL=1`` to run the paper's full grids), prints the
rendered figure to stdout, and asserts the qualitative shape the paper
reports.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "figure: regenerates a paper figure")


@pytest.fixture(scope="session")
def quick_mode() -> bool:
    """False when REPRO_FULL=1 (full paper grids)."""
    return os.environ.get("REPRO_FULL", "0") != "1"


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
