"""Frozen pre-optimization DES kernel (reference baseline).

A verbatim snapshot of ``repro.sim.core`` as it stood before the hot
path was optimized (peek-then-pop run loop, per-process start Event,
heap round-trip on already-processed yields, ``_scheduled`` guard).
The events/sec microbench runs the same workload against this module
and the live kernel so the reported speedup is self-contained and
reproducible on any machine — no stored numbers from another host.

Do not "fix" or optimize this file; it is the baseline.
"""


from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "Simulator",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (e.g. triggering an event twice)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies ``cause``, which the interrupted
    process can inspect to decide how to clean up.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    Events start untriggered.  Calling :meth:`succeed` or :meth:`fail`
    triggers them, after which their callbacks run (in the simulator
    loop, at the current simulated time).  Yielding an event from a
    process suspends that process until the event triggers.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_scheduled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception, if it failed)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event will have the exception thrown
        into them at their yield point.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running generator, driven by the events it yields.

    The process is itself an event: it triggers when the generator
    returns (succeeding with the return value) or raises (failing with
    the exception).  This is what makes ``result = yield sim.process(...)``
    and process joining work.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process at the current time via an immediate event.
        start = Event(sim)
        start._triggered = True
        start._ok = True
        start.callbacks = None  # never used; we resume directly
        sim._schedule_call(self._resume, start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A finished process cannot be interrupted; doing so raises
        :class:`SimulationError` to surface the race to the caller.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waiting = self._waiting_on
        if waiting is not None and not waiting.processed:
            # Detach from the event we were waiting on so its eventual
            # trigger does not resume us a second time.
            if waiting.callbacks is not None and self._resume_cb in waiting.callbacks:
                waiting.callbacks.remove(self._resume_cb)
        self._waiting_on = None
        fake = Event(self.sim)
        fake._triggered = True
        fake._ok = False
        fake._value = Interrupt(cause)
        self.sim._schedule_call(self._resume, fake)

    # -- internals ---------------------------------------------------------

    def _resume_cb(self, event: Event) -> None:
        self._resume(event)

    def _resume(self, event: Event) -> None:
        if self._triggered:  # interrupted after completion race; drop
            return
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process died
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
            try:
                self._generator.throw(exc)
            except BaseException as err:  # noqa: BLE001
                self.fail(err)
            return
        self._waiting_on = target
        if target.processed:
            # Already triggered and callbacks ran: resume at current time.
            self.sim._schedule_call(self._resume, target)
        elif target.callbacks is not None:
            target.callbacks.append(self._resume_cb)
        else:  # pragma: no cover - defensive
            self.sim._schedule_call(self._resume, target)


class _MultiEvent(Event):
    """Base for AnyOf/AllOf composition events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self.sim._schedule_call(self._check, ev)
                self._pending += 1
            elif ev.callbacks is not None:
                ev.callbacks.append(self._check)
                self._pending += 1
            else:  # pragma: no cover - defensive
                self.sim._schedule_call(self._check, ev)
                self._pending += 1

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_MultiEvent):
    """Triggers when any member event triggers.

    Succeeds with a dict mapping the triggered events to their values.
    Fails if the first member to trigger failed.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        # Use .processed, not .triggered: a pending Timeout counts as
        # triggered from creation, but only fires once its callbacks run.
        self.succeed({ev: ev.value for ev in self.events if ev.processed and ev.ok})


class AllOf(_MultiEvent):
    """Triggers when every member event has triggered.

    Succeeds with a dict mapping all events to their values; fails as
    soon as any member fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed({ev: ev.value for ev in self.events})


class Simulator:
    """The event loop: a priority queue of (time, sequence, action).

    All simulated components share one :class:`Simulator`.  Time is a
    float in seconds.  ``run(until=...)`` executes events in timestamp
    order until the queue empties or the horizon is reached.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0

    # -- public API --------------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have."""
        return AllOf(self, events)

    def run(self, until: Optional[float] = None) -> None:
        """Execute events in order until the horizon (or queue drain).

        When ``until`` is given, time is advanced exactly to ``until``
        even if the last event fires earlier, so back-to-back ``run``
        calls observe a continuous clock.
        """
        while self._heap:
            at, _seq, fn, arg = self._heap[0]
            if until is not None and at > until:
                break
            heapq.heappop(self._heap)
            self.now = at
            fn(arg)
        if until is not None and until > self.now:
            self.now = until

    def step(self) -> bool:
        """Execute a single queued action. Returns False when empty."""
        if not self._heap:
            return False
        at, _seq, fn, arg = heapq.heappop(self._heap)
        self.now = at
        fn(arg)
        return True

    @property
    def queue_size(self) -> int:
        """Number of pending queued actions (diagnostics only)."""
        return len(self._heap)

    # -- internals ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue an event's callback dispatch ``delay`` seconds from now."""
        if event._scheduled:
            return
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, self._dispatch, event))

    def _schedule_call(self, fn: Callable, arg: Any, delay: float = 0.0) -> None:
        """Queue an arbitrary callable (used to resume processes)."""
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, arg))

    @staticmethod
    def _dispatch(event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
