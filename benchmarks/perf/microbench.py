"""Kernel and scheduler microbenchmarks.

The kernel bench drives a fixed, purely kernel-bound workload — timeout
chains, event ping-pong relays, and spawn/join churn — through a DES
kernel module and reports logical events completed per wall-clock
second.  The same workload runs against the live ``repro.sim.core`` and
the frozen :mod:`refkernel` snapshot, so the speedup number is
self-contained (measured on this machine, this run) rather than a
comparison against numbers recorded elsewhere.

The scheduler bench measures end-to-end chunk throughput of the DDRR
scheduler in front of the simulated SSD — the actual hot loop behind
every figure grid — as completed chunks per wall second.
"""

from __future__ import annotations

import time
from typing import Any, Dict

__all__ = [
    "kernel_events_per_sec",
    "kernel_speedup",
    "scheduler_ops_per_sec",
]


def _timeout_chain(sim, rounds: int, counter):
    """Heap-heavy: one timeout round-trip per event."""
    timeout = sim.timeout
    for _ in range(rounds):
        yield timeout(0.001)
        counter[0] += 1


def _relay(sim, inbox, rounds: int, counter):
    """Event-callback-heavy: a value handed down a chain of waits."""
    for _ in range(rounds):
        value = yield inbox
        inbox = sim.event()
        inbox.succeed(value + 1)
        counter[0] += 1


def _spawn_join(sim, rounds: int, counter):
    """Process churn: spawn a trivial child, then join it *after* it
    finished — the already-processed-event resume path."""

    def child():
        return 1
        yield  # pragma: no cover - forces generator form

    for _ in range(rounds):
        proc = sim.process(child())
        yield sim.timeout(0.0005)
        yield proc  # finished by now: resume must not lose the value
        counter[0] += 2


def kernel_events_per_sec(kernel_module, scale: int = 1) -> Dict[str, Any]:
    """Run the fixed kernel workload; return events/sec and the checksum.

    ``kernel_module`` must expose the ``Simulator`` API (the live
    ``repro.sim.core`` or ``refkernel``).  ``scale`` multiplies the
    workload size.  The logical event count is workload-defined, so
    rates from different kernels are directly comparable.
    """
    sim = kernel_module.Simulator()
    counter = [0]
    chains, relays, spawners = 40 * scale, 40 * scale, 20 * scale
    rounds = 250
    for _ in range(chains):
        sim.process(_timeout_chain(sim, rounds, counter))
    for _ in range(relays):
        inbox = sim.event()
        sim.process(_relay(sim, inbox, rounds, counter))
        inbox.succeed(0)
    for _ in range(spawners):
        sim.process(_spawn_join(sim, rounds, counter))
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return {
        "events": counter[0],
        "wall_seconds": elapsed,
        "events_per_sec": counter[0] / elapsed if elapsed > 0 else 0.0,
    }


def kernel_speedup(scale: int = 1, repeats: int = 3) -> Dict[str, Any]:
    """Best-of-``repeats`` events/sec for the live kernel vs the frozen
    reference, plus their ratio (the figure tracked PR-to-PR)."""
    from repro.sim import core as live_kernel

    from . import refkernel

    def best(module):
        runs = [kernel_events_per_sec(module, scale=scale) for _ in range(repeats)]
        return max(runs, key=lambda r: r["events_per_sec"])

    ref = best(refkernel)
    live = best(live_kernel)
    if ref["events"] != live["events"]:
        raise AssertionError(
            f"kernel workload divergence: ref completed {ref['events']} events, "
            f"live completed {live['events']}"
        )
    return {
        "events": live["events"],
        "ref_events_per_sec": ref["events_per_sec"],
        "events_per_sec": live["events_per_sec"],
        "speedup": live["events_per_sec"] / ref["events_per_sec"],
    }


def scheduler_ops_per_sec(
    sim_seconds: float = 0.5, tenants: int = 4, tracer=None, num_queues: int = 0
) -> Dict[str, Any]:
    """End-to-end DDRR hot loop: backlogged 4K chunks through the
    scheduler and device, reported as completed chunks per wall second.

    ``tracer`` (a :class:`repro.obs.Tracer`, typically with
    ``enabled=False``) is installed on the scheduler and device — the
    knob behind the tracing-overhead gate in the perf harness.
    ``num_queues > 0`` swaps the device for a multi-queue
    :class:`~repro.ssd.NvmeDevice` with that many SQ/CQ pairs (the
    ``nvme`` harness stage)."""
    from repro.core.calibration import reference_calibration
    from repro.core.scheduler import LibraScheduler
    from repro.core.tags import IoTag, RequestClass
    from repro.core.vop import make_cost_model
    from repro.sim import Simulator
    from repro.ssd import NvmeDevice, SsdDevice, get_profile

    import random

    profile = get_profile("intel320")
    sim = Simulator()
    if num_queues > 0:
        profile = profile.with_queues(num_queues)
        device = NvmeDevice(sim, profile, seed=3, tracer=tracer)
    else:
        device = SsdDevice(sim, profile, seed=3, tracer=tracer)
    cost_model = make_cost_model("exact", reference_calibration(profile.name))
    scheduler = LibraScheduler(sim, device, cost_model, tracer=tracer)
    share = cost_model.max_iop / tenants
    rng = random.Random(3)
    page = profile.page_size
    max_slot = (profile.logical_capacity - 4096) // page

    def worker(tag):
        while sim.now < sim_seconds:
            if rng.random() < 0.5:
                yield scheduler.read(rng.randrange(0, max_slot) * page, 4096, tag=tag)
            else:
                yield scheduler.write(rng.randrange(0, max_slot) * page, 4096, tag=tag)

    for t in range(tenants):
        name = f"t{t}"
        scheduler.register_tenant(name, share)
        tag = IoTag(name, RequestClass.RAW)
        for _ in range(4):
            sim.process(worker(tag))
    started = time.perf_counter()
    sim.run(until=sim_seconds)
    elapsed = time.perf_counter() - started
    scheduler.stop()
    sim.run()
    ops = sum(scheduler.usage(f"t{t}").ops for t in range(tenants))
    return {
        "ops": ops,
        "sim_seconds": sim_seconds,
        "wall_seconds": elapsed,
        "ops_per_sec": ops / elapsed if elapsed > 0 else 0.0,
    }
