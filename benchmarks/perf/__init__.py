"""Performance harness for the DES kernel and the experiment grids.

Contents:

- ``refkernel``   — frozen pre-optimization kernel, the microbench baseline;
- ``microbench``  — events/sec kernel microbench + DDRR scheduler ops/sec;
- ``harness``     — CLI that runs the benches, the parallel-vs-serial
  figure-grid comparison, and writes ``BENCH_sim.json`` (the perf
  trajectory future PRs measure themselves against).

Run ``python benchmarks/perf/harness.py --help`` (with ``PYTHONPATH=src``).
"""
