"""Perf harness: measure the kernel, the scheduler, and a figure grid.

Runs the kernel events/sec microbench (live kernel vs the frozen
:mod:`refkernel` baseline), the DDRR scheduler throughput bench, a
fig4 interference grid serial vs ``--jobs N`` — checking that the two
renders are byte-identical — a replicated-cluster workload through
the :mod:`repro.net` fabric (RPC round trips per second at RF=1 vs
RF=2, plus the replication write-amplification overhead), the epoch
fast-forward bench (steady-state hybrid-simulation throughput, gated
on exact agreement with the event-by-event run and on the VOP audit
reconciling), the loaded-epoch bench (the same contract under
persistently non-empty queues, covered by the fluid DDRR engine and
additionally gated on a 70% fast-forward-fraction floor), the
control-plane bench (partition-map mutation
throughput plus the VOP overhead of growing a node mid-workload,
gated on zero acked-write loss across the live migrations), and the
tracing-overhead gate (a disabled
:class:`repro.obs.Tracer` must cost the scheduler hot loop <= 2%, and
a sample ``trace.json`` is exported for CI artifacts), then writes the
numbers to ``BENCH_sim.json``.
That file is the tracked perf trajectory: each PR that touches the hot
path regenerates it so regressions show up as a diff.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/harness.py            # full quick grid
    PYTHONPATH=src python benchmarks/perf/harness.py --smoke    # seconds, for CI
    PYTHONPATH=src python benchmarks/perf/harness.py --profile  # + cProfile dumps

``--smoke`` shrinks every stage (one microbench repeat, a tiny fig4
grid) so CI can run the harness in under a minute; the JSON it writes
is still schema-complete.  ``--profile`` wraps the live kernel bench
and the serial grid run in :mod:`cProfile` and prints the top entries
by cumulative time — the hook for digging into a regression the JSON
surfaced.

Two trajectory mechanisms ride on every run:

- **Regression gate** — the headline numbers (``kernel.events_per_sec``
  and ``scheduler.ops_per_sec``) are compared against the committed
  per-mode reference in ``benchmarks/perf/baseline.json``; a drop of
  more than 20% fails the run.  Set ``PERF_GATE_SKIP=1`` to disable the
  gate on runners too noisy for wall-clock thresholds (the comparison
  is still printed).
- **History** — each run appends one line (git SHA, UTC timestamp,
  headline numbers) to repo-root ``BENCH_history.jsonl`` and reports
  the speedup against the previous same-mode entry in the summary, so
  the perf trajectory across commits survives BENCH_sim.json being
  overwritten in place.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(os.path.dirname(_HERE))
for path in (os.path.join(_REPO, "src"), os.path.dirname(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)

from perf.microbench import kernel_speedup, scheduler_ops_per_sec  # noqa: E402

__all__ = ["main", "run_harness"]

DEFAULT_OUTPUT = os.path.join(_REPO, "BENCH_sim.json")
BASELINE_PATH = os.path.join(_HERE, "baseline.json")
HISTORY_PATH = os.path.join(_REPO, "BENCH_history.jsonl")
#: fractional drop vs the committed baseline that fails the gate
GATE_TOLERANCE = 0.20
#: headline metrics: (label, result path) pairs the gate and the
#: history trajectory both track
HEADLINE_METRICS = (
    ("kernel.events_per_sec", ("kernel", "events_per_sec")),
    ("scheduler.ops_per_sec", ("scheduler", "ops_per_sec")),
    ("nvme.ops_per_sec", ("nvme", "ops_per_sec")),
    ("epoch.ops_per_sec", ("epoch", "ops_per_sec")),
    ("epoch_loaded.ops_per_sec", ("epoch_loaded", "ops_per_sec")),
    ("epoch_loaded.ff_fraction", ("epoch_loaded", "ff_fraction")),
    ("control.map_changes_per_sec", ("control", "map_changes_per_sec")),
)


def _headline(results: Dict[str, Any]) -> Dict[str, float]:
    """Headline numbers present in ``results`` (a stage may be absent,
    e.g. in trimmed fixtures or future partial runs)."""
    found = {}
    for label, (section, key) in HEADLINE_METRICS:
        value = results.get(section, {}).get(key)
        if value is not None:
            found[label] = value
    return found


def _git_sha() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO, capture_output=True, text=True, timeout=10,
        )
        sha = proc.stdout.strip()
        return sha if proc.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


def check_regression(
    results: Dict[str, Any], smoke: bool, path: str = BASELINE_PATH
) -> List[str]:
    """Compare headline numbers to the committed per-mode baseline.

    Returns the list of failure messages (empty = pass).  Skipped —
    with a note, never silently — when ``PERF_GATE_SKIP`` is set or the
    baseline has no entry for this mode.
    """
    if os.environ.get("PERF_GATE_SKIP"):
        print("[perf] regression gate skipped (PERF_GATE_SKIP set)", file=sys.stderr)
        return []
    try:
        with open(path) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError):
        print(f"[perf] regression gate skipped (no {path})", file=sys.stderr)
        return []
    mode = "smoke" if smoke else "full"
    reference = baseline.get(mode)
    if not reference:
        print(f"[perf] regression gate skipped (no {mode!r} baseline)", file=sys.stderr)
        return []
    failures = []
    for label, current in _headline(results).items():
        ref = reference.get(label)
        if not ref:
            continue
        ratio = current / ref
        status = "OK" if ratio >= 1.0 - GATE_TOLERANCE else "REGRESSION"
        print(
            f"[perf]   gate {label}: {current:.0f} vs baseline {ref:.0f} "
            f"({ratio:.2f}x) {status}",
            file=sys.stderr,
        )
        if status != "OK":
            failures.append(
                f"{label} dropped to {current:.0f} from baseline {ref:.0f} "
                f"({100.0 * (1.0 - ratio):.0f}% > {100.0 * GATE_TOLERANCE:.0f}% budget; "
                f"set PERF_GATE_SKIP=1 to override on noisy runners)"
            )
    return failures


def append_history(results: Dict[str, Any], smoke: bool, path: str = HISTORY_PATH) -> None:
    """Append this run's headline numbers to the perf trajectory log and
    report the speedup against the previous same-mode entry.

    Smoke and full runs have wildly different scales, so the comparison
    only ever looks at the most recent entry with the *same* ``smoke``
    flag, and the appended line records what it was compared against
    (``compared_to``) so the trajectory log is self-describing.
    """
    previous = None
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if entry.get("smoke") == smoke:
                    previous = entry
    except OSError:
        pass
    mode = "smoke" if smoke else "full"
    headline = _headline(results)
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": _git_sha(),
        "smoke": smoke,
        "compared_to": (
            f"{previous.get('git_sha', '?')} @ "
            f"{previous.get('timestamp', '?')} ({mode})"
            if previous is not None
            else None
        ),
        **headline,
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=False) + "\n")
    # Only the headline metrics participate in the speedup report — the
    # bookkeeping fields also live in ``record`` (and ``smoke`` is a
    # bool, which *is* an int to isinstance), so iterating the record
    # itself would emit nonsense ratios.
    for label in headline:
        if previous is None:
            break
        prev = previous.get(label)
        if isinstance(prev, bool) or not isinstance(prev, (int, float)) or not prev:
            continue
        speedup = headline[label] / prev
        print(
            f"[perf]   history {label}: {speedup:.2f}x vs previous {mode} "
            f"({previous.get('git_sha', '?')} @ {previous.get('timestamp', '?')})",
            file=sys.stderr,
        )
    if previous is None:
        print(f"[perf]   history: first entry for {mode} mode", file=sys.stderr)


def _tiny_mode():
    """A seconds-scale fig4 grid for --smoke: same code path, less work."""
    from repro.experiments.common import KIB, ExperimentMode

    return ExperimentMode(
        name="tiny",
        sizes=(4 * KIB, 64 * KIB),
        ratios=(None, 0.5),
        sigmas=(4 * KIB,),
        duration=0.08,
        warmup=0.03,
        kv_horizon=10.0,
    )


def _maybe_profiled(enabled: bool, label: str, fn):
    """Run ``fn()``; under --profile, wrap it in cProfile and print the
    top functions by cumulative time."""
    if not enabled:
        return fn()
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    print(f"\n--- cProfile: {label} (top 20 by cumulative time) ---", file=sys.stderr)
    pstats.Stats(profiler, stream=sys.stderr).sort_stats("cumulative").print_stats(20)
    return result


def _bench_grid(jobs: int, smoke: bool, profile: bool) -> Dict[str, Any]:
    """fig4 serial vs ``jobs`` workers: wall-clock speedup plus the
    byte-equality check that guards the parallel merge."""
    from repro.experiments import fig4

    mode = _tiny_mode() if smoke else None
    quick = True

    def serial():
        return fig4.run(quick=quick, jobs=1, mode=mode)

    started = time.perf_counter()
    serial_result = _maybe_profiled(profile, "fig4 serial grid", serial)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel_result = fig4.run(quick=quick, jobs=jobs, mode=mode)
    parallel_seconds = time.perf_counter() - started

    identical = fig4.render(serial_result) == fig4.render(parallel_result)
    return {
        "figure": "fig4",
        "mode": serial_result.mode,
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup_vs_serial": round(serial_seconds / parallel_seconds, 3)
        if parallel_seconds > 0
        else 0.0,
        "byte_identical": identical,
    }


def _bench_cluster(smoke: bool, profile: bool) -> Dict[str, Any]:
    """Replicated-cluster RPC throughput: a closed-loop workload through
    the net fabric at RF=1 vs RF=2, measuring completed RPC round trips
    per wall second and the replication overhead (durable WAL records
    and backup applies per acknowledged write)."""
    import random

    from repro.core import Reservation
    from repro.faults import StorageFault
    from repro.net import NetConfig
    from repro.node import NodeConfig, StorageCluster
    from repro.sim import Simulator

    horizon = 0.6 if smoke else 3.0

    def one_rf(rf: int) -> Dict[str, Any]:
        sim = Simulator()
        cluster = StorageCluster(
            sim,
            n_nodes=3,
            profile="intel320",
            config=NodeConfig(cache_bytes=0),
            partitions_per_tenant=6,
            seed=17,
            net=NetConfig(rf=rf),
        )
        cluster.add_tenant("t1", Reservation(gets=4000.0, puts=4000.0))
        client = cluster.make_client()
        acked = [0]

        def worker(widx):
            rng = random.Random(f"perf-cluster:{rf}:{widx}")
            while sim.now < horizon:
                key = rng.randrange(512)
                try:
                    yield from client.put("t1", key, 4096)
                    acked[0] += 1
                    yield from client.get("t1", key)
                except StorageFault:
                    pass

        for widx in range(8):
            sim.process(worker(widx))
        started = time.perf_counter()
        sim.run(until=horizon)
        wall = time.perf_counter() - started
        cluster.stop()
        round_trips = client.rpc.stats.round_trips + sum(
            service.rpc.stats.round_trips for service in cluster.services.values()
        )
        durable = sum(cluster.durable_record_counts("t1").values())
        stats = cluster.total_stats("t1")
        return {
            "round_trips": round_trips,
            "round_trips_per_sec": round(round_trips / wall, 1) if wall > 0 else 0.0,
            "acked_puts": acked[0],
            "repl_applies": stats.repl_applies,
            "write_amplification": round(durable / acked[0], 3) if acked[0] else 0.0,
            "wall_seconds": round(wall, 3),
        }

    rf1 = _maybe_profiled(profile, "cluster workload (rf=1)", lambda: one_rf(1))
    rf2 = one_rf(2)
    overhead = (
        round(rf2["write_amplification"] / rf1["write_amplification"], 3)
        if rf1["write_amplification"]
        else 0.0
    )
    return {
        "horizon_sim_seconds": horizon,
        "rf1": rf1,
        "rf2": rf2,
        "replication_overhead": overhead,
    }


def _bench_obs(smoke: bool, trace_path: str) -> Dict[str, Any]:
    """Tracing overhead on the scheduler hot loop, plus a sample trace.

    Interleaves best-of-N runs with no tracer against runs with a
    *disabled* tracer installed (the production default: every
    instrumentation point pays one attribute load and a None/flag
    test).  The overhead ratio gates the harness exit code at 2%.  A
    short traced run then exports ``trace_path`` so CI can publish a
    loadable Chrome trace artifact.
    """
    from repro.obs import Tracer

    sim_seconds = 0.1 if smoke else 0.3
    repeats = 3 if smoke else 5

    def measure(n: int):
        base_best = 0.0
        disabled_best = 0.0
        for _ in range(n):
            base = scheduler_ops_per_sec(sim_seconds=sim_seconds)
            disabled = scheduler_ops_per_sec(
                sim_seconds=sim_seconds, tracer=Tracer(enabled=False)
            )
            base_best = max(base_best, base["ops_per_sec"])
            disabled_best = max(disabled_best, disabled["ops_per_sec"])
        ratio = base_best / disabled_best - 1.0 if disabled_best > 0 else 0.0
        return ratio, base_best, disabled_best

    # Wall-clock jitter on shared CI runners dwarfs a 2% signal, so the
    # gate escalates instead of trusting one estimate: a real regression
    # reproduces under every re-measurement, noise does not survive the
    # min of independent best-of-N estimates.
    overhead, base_best, disabled_best = measure(repeats)
    for _ in range(2):
        if overhead <= 0.02:
            break
        retry, retry_base, retry_disabled = measure(2 * repeats)
        if retry < overhead:
            overhead, base_best, disabled_best = retry, retry_base, retry_disabled

    # A negative estimate just means the no-tracer side lost the jitter
    # lottery — both sides are best-of-N of the same loop, so the true
    # overhead cannot be below zero.  Clamp for the recorded number
    # (a "-0.15%" overhead in the JSON reads as a measurement bug),
    # keep the raw value, and mark the measurement as noise-dominated.
    noisy = overhead < 0.0
    clamped = max(overhead, 0.0)

    tracer = Tracer()
    traced = scheduler_ops_per_sec(sim_seconds=sim_seconds, tracer=tracer)
    tracer.export_chrome(trace_path)
    return {
        "sim_seconds": sim_seconds,
        "repeats": repeats,
        "ops_per_sec_no_tracer": round(base_best, 1),
        "ops_per_sec_tracer_disabled": round(disabled_best, 1),
        "disabled_overhead": round(clamped, 4),
        "disabled_overhead_raw": round(overhead, 4),
        "noisy": noisy,
        "disabled_overhead_ok": clamped <= 0.02,
        "traced_spans": tracer.span_count,
        "traced_ops": traced["ops"],
        "trace_path": os.path.basename(trace_path),
    }


def _bench_epoch(smoke: bool, profile: bool) -> Dict[str, Any]:
    """Epoch fast-forward throughput on a steady-state workload.

    Four read-only open-loop tenants under their allocations — the
    whole horizon qualifies as one analytic epoch, so this measures the
    fast-forward arrival loop itself (stream draws, bulk VOP credit,
    analytic device accounting).  The recorded ``ops_per_sec`` is
    best-of-N completed tasks per wall second with ``fast_forward=True``.

    Two cross-checks ride along and gate the harness exit code:
    an event-by-event run of the same seed must agree exactly on
    tasks/ops/bytes (and on VOPs to float tolerance), and an audited
    fast-forward run must reconcile at 1.0 with zero flags.
    """
    from repro.ssd import get_profile
    from repro.workload import EpochTenantSpec, run_epoch_trial

    horizon = 4.0 if smoke else 10.0
    repeats = 2 if smoke else 3
    device_profile = get_profile("intel320")
    specs = [
        EpochTenantSpec(name=f"t{i}", rate=2500.0, read_fraction=1.0)
        for i in range(4)
    ]

    def one_ff():
        return run_epoch_trial(
            device_profile, specs, horizon=horizon, seed=7, fast_forward=True
        )

    best = _maybe_profiled(profile, "epoch fast-forward (steady read)", one_ff)
    for _ in range(repeats - 1):
        trial = one_ff()
        if trial.tasks_per_wall_second > best.tasks_per_wall_second:
            best = trial

    des = run_epoch_trial(
        device_profile, specs, horizon=horizon, seed=7, fast_forward=False
    )
    agreement_ok = (
        des.total_tasks == best.total_tasks
        and des.total_ops == best.total_ops
        and des.total_bytes == best.total_bytes
        and abs(des.total_vops - best.total_vops)
        <= 1e-6 * max(des.total_vops, 1.0)
    )
    audited = run_epoch_trial(
        device_profile, specs, horizon=min(horizon, 4.0), seed=7,
        fast_forward=True, audit=True,
    )
    summary = audited.audit_summary
    return {
        "horizon_sim_seconds": horizon,
        "repeats": repeats,
        "tasks": best.total_tasks,
        "wall_seconds": round(best.wall_seconds, 3),
        "ops_per_sec": round(best.tasks_per_wall_second, 1),
        "ff_fraction": round(best.ff_fraction, 4),
        "des_wall_seconds": round(des.wall_seconds, 3),
        "speedup_vs_des": round(des.wall_seconds / best.wall_seconds, 2)
        if best.wall_seconds > 0
        else 0.0,
        "agreement_ok": agreement_ok,
        "audit_reconciliation": round(summary["reconciliation"], 6),
        "audit_ok": summary["ok"],
    }


def _bench_epoch_loaded(smoke: bool, profile: bool) -> Dict[str, Any]:
    """Fluid (stable-backlog) fast-forward throughput under load.

    Four read-only open-loop tenants at 75% of the provisioned VOP
    capacity — queues stay persistently non-empty, so the quiet regime
    never applies and coverage comes from the fluid engine's analytic
    DDRR round schedule.  Records best-of-N completed tasks per wall
    second with ``fast_forward=True`` plus the fast-forwarded fraction
    of the horizon; both are headline metrics
    (``epoch_loaded.ops_per_sec``, ``epoch_loaded.ff_fraction``).

    Hard gates on the harness exit code: the same seed replayed
    event-by-event must agree exactly on tasks/ops/bytes (VOPs to
    float tolerance), the audit must reconcile at 1.0, and the fluid
    regime must cover at least 70% of the horizon — losing coverage is
    losing the optimisation this stage exists to track.
    """
    from repro.core.calibration import reference_calibration
    from repro.core.tags import OpKind
    from repro.core.vop import make_cost_model
    from repro.ssd import get_profile
    from repro.workload import EpochTenantSpec, run_epoch_trial

    horizon = 4.0 if smoke else 10.0
    repeats = 2 if smoke else 3
    device_profile = get_profile("intel320")
    model = make_cost_model("exact", reference_calibration("intel320"))
    rate = 0.75 * model.max_iop / model.cost(OpKind.READ, 4096) / 4
    specs = [
        EpochTenantSpec(name=f"t{i}", rate=rate, read_fraction=1.0)
        for i in range(4)
    ]

    def one_ff():
        return run_epoch_trial(
            device_profile, specs, horizon=horizon, seed=7, fast_forward=True
        )

    best = _maybe_profiled(profile, "epoch fast-forward (loaded read)", one_ff)
    for _ in range(repeats - 1):
        trial = one_ff()
        if trial.tasks_per_wall_second > best.tasks_per_wall_second:
            best = trial

    des = run_epoch_trial(
        device_profile, specs, horizon=horizon, seed=7, fast_forward=False
    )
    agreement_ok = (
        des.total_tasks == best.total_tasks
        and des.total_ops == best.total_ops
        and des.total_bytes == best.total_bytes
        and abs(des.total_vops - best.total_vops)
        <= 1e-6 * max(des.total_vops, 1.0)
    )
    audited = run_epoch_trial(
        device_profile, specs, horizon=min(horizon, 4.0), seed=7,
        fast_forward=True, audit=True,
    )
    summary = audited.audit_summary
    return {
        "horizon_sim_seconds": horizon,
        "repeats": repeats,
        "tenant_rate": round(rate, 1),
        "tasks": best.total_tasks,
        "wall_seconds": round(best.wall_seconds, 3),
        "ops_per_sec": round(best.tasks_per_wall_second, 1),
        "ff_fraction": round(best.ff_fraction, 4),
        "fluid_fraction": round(best.fluid_fraction, 4),
        "des_reasons": {
            reason: round(seconds, 4)
            for reason, seconds in sorted(best.des_reasons.items())
        },
        "des_wall_seconds": round(des.wall_seconds, 3),
        "speedup_vs_des": round(des.wall_seconds / best.wall_seconds, 2)
        if best.wall_seconds > 0
        else 0.0,
        "agreement_ok": agreement_ok,
        "audit_reconciliation": round(summary["reconciliation"], 6),
        "audit_epoch_share": round(summary["epoch_share"], 4),
        "audit_ok": summary["ok"],
    }


def _bench_control(smoke: bool, profile: bool) -> Dict[str, Any]:
    """Control-plane costs: map-change throughput and migration VOPs.

    The map leg hammers the versioned ranged ``PartitionMap`` with the
    planner's mutation vocabulary — splits, promotions, atomic replica
    cutovers — and records best-of-N mutations per wall second; the
    routing structure must keep up with a planner loop at 10k+ tenants.

    The migration leg runs the same seeded open-loop writer twice —
    once on a static 3-node cluster, once growing a fourth node (live
    ring-driven migrations) mid-run — and prices elasticity as the
    relative increase in scheduler-charged VOPs (snapshot scans, wire
    ships, and destination applies are all charged, so the delta is the
    real bill).  Zero acked-write loss in the migrating run is a hard
    gate on the harness exit code.
    """
    import random

    from repro.core import Reservation
    from repro.faults import StorageFault
    from repro.net import NetConfig
    from repro.node import NodeConfig, StorageCluster
    from repro.node.router import PartitionMap
    from repro.sim import Simulator

    # -- map-change throughput (pure control plane, no DES) ------------
    split_rounds = 2 if smoke else 4
    churn_rounds = 20 if smoke else 60
    repeats = 2 if smoke else 3
    names = [f"n{i}" for i in range(8)]
    base_sets = [(names[i % 8], names[(i + 1) % 8]) for i in range(16)]

    def one_map_pass() -> float:
        pm = PartitionMap(4)
        pm.place_tenant_ranges("bench", base_sets, key_space=1 << 20)
        ops = 0
        started = time.perf_counter()
        for _ in range(split_rounds):
            for part in list(pm.partitions("bench")):
                if part.hi - part.lo >= 2:
                    pm.split(
                        "bench", part.index,
                        (part.lo + part.hi) // 2, part.replicas,
                    )
                    ops += 1
        for _ in range(churn_rounds):
            for part in list(pm.partitions("bench")):
                rotated = part.replicas[1:] + part.replicas[:1]
                pm.set_replicas("bench", part.index, rotated)
                pm.promote("bench", part.index, rotated[1])
                ops += 2
        wall = time.perf_counter() - started
        return ops / wall if wall > 0 else 0.0

    map_best = _maybe_profiled(profile, "partition-map mutation loop", one_map_pass)
    for _ in range(repeats - 1):
        map_best = max(map_best, one_map_pass())

    # -- migration VOP overhead (full stack, grow mid-run) -------------
    horizon = 0.6 if smoke else 1.5

    def one_run(migrate: bool) -> Dict[str, Any]:
        sim = Simulator()
        cluster = StorageCluster(
            sim,
            n_nodes=3,
            profile="intel320",
            config=NodeConfig(cache_bytes=0),
            seed=23,
            net=NetConfig(rf=2),
        )
        cluster.enable_control(key_space=1 << 14, vnodes=16)
        cluster.add_ranged_tenant(
            "t1", Reservation(gets=4000.0, puts=4000.0), n_partitions=4
        )
        client = cluster.make_client()
        acked: Dict[int, int] = {}
        counters = {"errors": 0, "lost": 0, "migrations": 0}

        def writer():
            rng = random.Random("perf-control-writer")
            while sim.now < horizon:
                key = rng.randrange(1 << 14)
                try:
                    yield from client.put("t1", key, 4096)
                    acked[key] = 4096
                except StorageFault:
                    counters["errors"] += 1
                yield sim.timeout(0.004)

        def controller():
            yield sim.timeout(horizon / 3.0)
            if migrate:
                reports = yield from cluster.grow("node3")
                counters["migrations"] = len(reports)

        def verifier():
            yield sim.timeout(horizon + 0.05)
            for key, size in acked.items():
                try:
                    got = yield from client.get("t1", key)
                except StorageFault:
                    got = None
                if got != size:
                    counters["lost"] += 1

        sim.process(writer())
        sim.process(controller())
        sim.process(verifier())
        sim.run(until=horizon + (3.0 if migrate else 1.0))
        cluster.stop()
        vops = sum(
            node.scheduler.usage("t1").vops
            for node in cluster.nodes.values()
            if "t1" in node.tenants
        )
        return {
            "acked": len(acked),
            "errors": counters["errors"],
            "lost": counters["lost"],
            "migrations": counters["migrations"],
            "vops": round(vops, 1),
        }

    static = _maybe_profiled(
        profile, "control workload (static)", lambda: one_run(False)
    )
    grown = one_run(True)
    overhead = (
        round(grown["vops"] / static["vops"] - 1.0, 4) if static["vops"] else 0.0
    )
    return {
        "map_split_rounds": split_rounds,
        "map_churn_rounds": churn_rounds,
        "map_changes_per_sec": round(map_best, 1),
        "horizon_sim_seconds": horizon,
        "static": static,
        "grown": grown,
        "migration_vop_overhead": overhead,
        "migration_lossless": grown["lost"] == 0 and static["lost"] == 0,
    }


def run_harness(
    jobs: int = 4, smoke: bool = False, profile: bool = False
) -> Dict[str, Any]:
    """Run every stage and return the BENCH_sim.json payload."""
    print("[perf] kernel microbench (live vs frozen baseline)...", file=sys.stderr)
    # Best-of-2 even under --smoke: the regression gate compares the
    # recorded number against a committed baseline, and a single run is
    # too exposed to shared-runner jitter to gate on.
    kernel = _maybe_profiled(
        profile,
        "kernel microbench (live)",
        lambda: kernel_speedup(scale=1, repeats=2 if smoke else 3),
    )
    kernel = {
        "events": kernel["events"],
        "ref_events_per_sec": round(kernel["ref_events_per_sec"], 1),
        "events_per_sec": round(kernel["events_per_sec"], 1),
        "speedup_vs_baseline": round(kernel["speedup"], 3),
    }
    print(
        f"[perf]   {kernel['events_per_sec']:.0f} ev/s, "
        f"{kernel['speedup_vs_baseline']:.2f}x the frozen kernel",
        file=sys.stderr,
    )

    print("[perf] DDRR scheduler throughput...", file=sys.stderr)
    # Best-of-N, like the tracing-overhead stage: the first run in a
    # fresh interpreter pays cold bytecode/caches and a single run is
    # at the mercy of shared-runner jitter, so the recorded trajectory
    # number is the best of three steady-state measurements.
    sched_repeats = 3
    sched = max(
        (
            scheduler_ops_per_sec(sim_seconds=0.1 if smoke else 0.5)
            for _ in range(sched_repeats)
        ),
        key=lambda r: r["ops_per_sec"],
    )
    scheduler = {
        "ops": sched["ops"],
        "sim_seconds": sched["sim_seconds"],
        "repeats": sched_repeats,
        "ops_per_sec": round(sched["ops_per_sec"], 1),
    }
    print(f"[perf]   {scheduler['ops_per_sec']:.0f} chunks/s", file=sys.stderr)

    print("[perf] NVMe multi-queue scheduler throughput (queues=8)...", file=sys.stderr)
    # Same closed loop as the scheduler stage, on the 8-queue NVMe
    # device — tracks the cost of per-SQ admission, command-tag
    # arbitration, and the per-queue controller lanes.  Best-of-N for
    # the same jitter reasons as above.
    nvme_queues = 8
    nvme_best = max(
        (
            scheduler_ops_per_sec(
                sim_seconds=0.1 if smoke else 0.5, num_queues=nvme_queues
            )
            for _ in range(sched_repeats)
        ),
        key=lambda r: r["ops_per_sec"],
    )
    nvme = {
        "num_queues": nvme_queues,
        "ops": nvme_best["ops"],
        "sim_seconds": nvme_best["sim_seconds"],
        "repeats": sched_repeats,
        "ops_per_sec": round(nvme_best["ops_per_sec"], 1),
    }
    print(f"[perf]   {nvme['ops_per_sec']:.0f} chunks/s", file=sys.stderr)

    print(f"[perf] fig4 grid: serial vs --jobs {jobs}...", file=sys.stderr)
    grid = _bench_grid(jobs=jobs, smoke=smoke, profile=profile)
    print(
        f"[perf]   serial {grid['serial_seconds']:.1f}s, "
        f"jobs={jobs} {grid['parallel_seconds']:.1f}s "
        f"({grid['speedup_vs_serial']:.2f}x), "
        f"byte_identical={grid['byte_identical']}",
        file=sys.stderr,
    )

    print("[perf] cluster workload: RPC round trips and replication...", file=sys.stderr)
    cluster = _bench_cluster(smoke=smoke, profile=profile)
    print(
        f"[perf]   rf1 {cluster['rf1']['round_trips_per_sec']:.0f} rt/s, "
        f"rf2 {cluster['rf2']['round_trips_per_sec']:.0f} rt/s, "
        f"write-amp overhead {cluster['replication_overhead']:.2f}x",
        file=sys.stderr,
    )

    print("[perf] epoch fast-forward (steady-state hybrid sim)...", file=sys.stderr)
    epoch = _bench_epoch(smoke=smoke, profile=profile)
    print(
        f"[perf]   {epoch['ops_per_sec']:.0f} ops/s fast-forwarded "
        f"({epoch['speedup_vs_des']:.1f}x the event-by-event run), "
        f"agreement={epoch['agreement_ok']}, "
        f"audit recon {epoch['audit_reconciliation']:.4f}",
        file=sys.stderr,
    )

    print("[perf] epoch fast-forward (loaded stable backlog)...", file=sys.stderr)
    epoch_loaded = _bench_epoch_loaded(smoke=smoke, profile=profile)
    print(
        f"[perf]   {epoch_loaded['ops_per_sec']:.0f} ops/s through the fluid "
        f"engine ({epoch_loaded['speedup_vs_des']:.1f}x the event-by-event "
        f"run), ff fraction {epoch_loaded['ff_fraction']:.2f}, "
        f"agreement={epoch_loaded['agreement_ok']}, "
        f"audit recon {epoch_loaded['audit_reconciliation']:.4f}",
        file=sys.stderr,
    )

    print("[perf] control plane: map changes and migration VOPs...", file=sys.stderr)
    control = _bench_control(smoke=smoke, profile=profile)
    print(
        f"[perf]   {control['map_changes_per_sec']:.0f} map changes/s, "
        f"migration VOP overhead "
        f"{100.0 * control['migration_vop_overhead']:+.1f}% "
        f"({control['grown']['migrations']} live migrations, "
        f"lossless={control['migration_lossless']})",
        file=sys.stderr,
    )

    print("[perf] tracing overhead (disabled tracer vs none)...", file=sys.stderr)
    obs = _bench_obs(smoke=smoke, trace_path=os.path.join(_REPO, "trace.json"))
    print(
        f"[perf]   disabled-tracer overhead "
        f"{100.0 * obs['disabled_overhead']:+.2f}% "
        f"(gate 2%), sample trace: {obs['traced_spans']} spans",
        file=sys.stderr,
    )

    return {
        "schema": 1,
        "smoke": smoke,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "kernel": kernel,
        "scheduler": scheduler,
        "nvme": nvme,
        "grids": {"fig4": grid},
        "cluster": cluster,
        "epoch": epoch,
        "epoch_loaded": epoch_loaded,
        "control": control,
        "obs": obs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the DES kernel, scheduler, and figure grids."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run for CI (tiny grid, single microbench repeat)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4, metavar="N",
        help="worker processes for the parallel grid leg (default 4)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="wrap the kernel bench and the serial grid in cProfile",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT, metavar="PATH",
        help="where to write the JSON results (default: repo-root BENCH_sim.json)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    results = run_harness(jobs=args.jobs, smoke=args.smoke, profile=args.profile)
    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"[perf] wrote {args.output}", file=sys.stderr)

    print("[perf] perf trajectory (BENCH_history.jsonl)...", file=sys.stderr)
    append_history(results, smoke=args.smoke)
    print("[perf] regression gate (vs benchmarks/perf/baseline.json)...", file=sys.stderr)
    gate_failures = check_regression(results, smoke=args.smoke)

    if not results["grids"]["fig4"]["byte_identical"]:
        print("[perf] FAIL: parallel grid diverged from serial", file=sys.stderr)
        return 1
    if not results["epoch"]["agreement_ok"]:
        print(
            "[perf] FAIL: epoch fast-forward diverged from the "
            "event-by-event run",
            file=sys.stderr,
        )
        return 1
    if not results["epoch"]["audit_ok"]:
        print(
            f"[perf] FAIL: epoch fast-forward audit flagged "
            f"(reconciliation {results['epoch']['audit_reconciliation']:.4f})",
            file=sys.stderr,
        )
        return 1
    if not results["epoch_loaded"]["agreement_ok"]:
        print(
            "[perf] FAIL: loaded-epoch fluid fast-forward diverged from the "
            "event-by-event run",
            file=sys.stderr,
        )
        return 1
    if not results["epoch_loaded"]["audit_ok"]:
        print(
            f"[perf] FAIL: loaded-epoch audit flagged (reconciliation "
            f"{results['epoch_loaded']['audit_reconciliation']:.4f})",
            file=sys.stderr,
        )
        return 1
    if results["epoch_loaded"]["ff_fraction"] < 0.70:
        print(
            f"[perf] FAIL: loaded-epoch ff fraction "
            f"{results['epoch_loaded']['ff_fraction']:.2f} below the 0.70 "
            f"floor (the fluid regime lost coverage; see "
            f"epoch_loaded.des_reasons for where)",
            file=sys.stderr,
        )
        return 1
    if not results["control"]["migration_lossless"]:
        print(
            f"[perf] FAIL: live migration lost acked writes "
            f"(static {results['control']['static']['lost']}, "
            f"grown {results['control']['grown']['lost']})",
            file=sys.stderr,
        )
        return 1
    if not results["obs"]["disabled_overhead_ok"]:
        print(
            f"[perf] FAIL: disabled-tracer overhead "
            f"{100.0 * results['obs']['disabled_overhead']:.2f}% exceeds the "
            f"2% budget",
            file=sys.stderr,
        )
        return 1
    if gate_failures:
        for failure in gate_failures:
            print(f"[perf] FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
