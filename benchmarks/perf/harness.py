"""Perf harness: measure the kernel, the scheduler, and a figure grid.

Runs the kernel events/sec microbench (live kernel vs the frozen
:mod:`refkernel` baseline), the DDRR scheduler throughput bench, and a
fig4 interference grid serial vs ``--jobs N`` — checking that the two
renders are byte-identical — then writes the numbers to
``BENCH_sim.json``.  That file is the tracked perf trajectory: each PR
that touches the hot path regenerates it so regressions show up as a
diff.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/harness.py            # full quick grid
    PYTHONPATH=src python benchmarks/perf/harness.py --smoke    # seconds, for CI
    PYTHONPATH=src python benchmarks/perf/harness.py --profile  # + cProfile dumps

``--smoke`` shrinks every stage (one microbench repeat, a tiny fig4
grid) so CI can run the harness in under a minute; the JSON it writes
is still schema-complete.  ``--profile`` wraps the live kernel bench
and the serial grid run in :mod:`cProfile` and prints the top entries
by cumulative time — the hook for digging into a regression the JSON
surfaced.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, Optional

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(os.path.dirname(_HERE))
for path in (os.path.join(_REPO, "src"), os.path.dirname(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)

from perf.microbench import kernel_speedup, scheduler_ops_per_sec  # noqa: E402

__all__ = ["main", "run_harness"]

DEFAULT_OUTPUT = os.path.join(_REPO, "BENCH_sim.json")


def _tiny_mode():
    """A seconds-scale fig4 grid for --smoke: same code path, less work."""
    from repro.experiments.common import KIB, ExperimentMode

    return ExperimentMode(
        name="tiny",
        sizes=(4 * KIB, 64 * KIB),
        ratios=(None, 0.5),
        sigmas=(4 * KIB,),
        duration=0.08,
        warmup=0.03,
        kv_horizon=10.0,
    )


def _maybe_profiled(enabled: bool, label: str, fn):
    """Run ``fn()``; under --profile, wrap it in cProfile and print the
    top functions by cumulative time."""
    if not enabled:
        return fn()
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    print(f"\n--- cProfile: {label} (top 20 by cumulative time) ---", file=sys.stderr)
    pstats.Stats(profiler, stream=sys.stderr).sort_stats("cumulative").print_stats(20)
    return result


def _bench_grid(jobs: int, smoke: bool, profile: bool) -> Dict[str, Any]:
    """fig4 serial vs ``jobs`` workers: wall-clock speedup plus the
    byte-equality check that guards the parallel merge."""
    from repro.experiments import fig4

    mode = _tiny_mode() if smoke else None
    quick = True

    def serial():
        return fig4.run(quick=quick, jobs=1, mode=mode)

    started = time.perf_counter()
    serial_result = _maybe_profiled(profile, "fig4 serial grid", serial)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel_result = fig4.run(quick=quick, jobs=jobs, mode=mode)
    parallel_seconds = time.perf_counter() - started

    identical = fig4.render(serial_result) == fig4.render(parallel_result)
    return {
        "figure": "fig4",
        "mode": serial_result.mode,
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup_vs_serial": round(serial_seconds / parallel_seconds, 3)
        if parallel_seconds > 0
        else 0.0,
        "byte_identical": identical,
    }


def run_harness(
    jobs: int = 4, smoke: bool = False, profile: bool = False
) -> Dict[str, Any]:
    """Run every stage and return the BENCH_sim.json payload."""
    print(f"[perf] kernel microbench (live vs frozen baseline)...", file=sys.stderr)
    kernel = _maybe_profiled(
        profile,
        "kernel microbench (live)",
        lambda: kernel_speedup(scale=1, repeats=1 if smoke else 3),
    )
    kernel = {
        "events": kernel["events"],
        "ref_events_per_sec": round(kernel["ref_events_per_sec"], 1),
        "events_per_sec": round(kernel["events_per_sec"], 1),
        "speedup_vs_baseline": round(kernel["speedup"], 3),
    }
    print(
        f"[perf]   {kernel['events_per_sec']:.0f} ev/s, "
        f"{kernel['speedup_vs_baseline']:.2f}x the frozen kernel",
        file=sys.stderr,
    )

    print(f"[perf] DDRR scheduler throughput...", file=sys.stderr)
    sched = scheduler_ops_per_sec(sim_seconds=0.1 if smoke else 0.5)
    scheduler = {
        "ops": sched["ops"],
        "sim_seconds": sched["sim_seconds"],
        "ops_per_sec": round(sched["ops_per_sec"], 1),
    }
    print(f"[perf]   {scheduler['ops_per_sec']:.0f} chunks/s", file=sys.stderr)

    print(f"[perf] fig4 grid: serial vs --jobs {jobs}...", file=sys.stderr)
    grid = _bench_grid(jobs=jobs, smoke=smoke, profile=profile)
    print(
        f"[perf]   serial {grid['serial_seconds']:.1f}s, "
        f"jobs={jobs} {grid['parallel_seconds']:.1f}s "
        f"({grid['speedup_vs_serial']:.2f}x), "
        f"byte_identical={grid['byte_identical']}",
        file=sys.stderr,
    )

    return {
        "schema": 1,
        "smoke": smoke,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "kernel": kernel,
        "scheduler": scheduler,
        "grids": {"fig4": grid},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the DES kernel, scheduler, and figure grids."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run for CI (tiny grid, single microbench repeat)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4, metavar="N",
        help="worker processes for the parallel grid leg (default 4)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="wrap the kernel bench and the serial grid in cProfile",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT, metavar="PATH",
        help="where to write the JSON results (default: repo-root BENCH_sim.json)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    results = run_harness(jobs=args.jobs, smoke=args.smoke, profile=args.profile)
    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"[perf] wrote {args.output}", file=sys.stderr)

    if not results["grids"]["fig4"]["byte_identical"]:
        print("[perf] FAIL: parallel grid diverged from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
