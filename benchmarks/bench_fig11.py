"""Bench: regenerate Figure 11 (reservations with/without profiles)."""

import pytest

from repro.experiments import fig11
from conftest import run_once


@pytest.mark.figure
def test_fig11_reservations(benchmark, quick_mode):
    result = run_once(benchmark, fig11.run, quick=quick_mode)
    print()
    print(fig11.render(result))

    # With app-request profile tracking, every group meets its
    # reservation in both phases — including the write-heavy tenants
    # after their +50% increase.
    for group in ("read-heavy", "mixed", "write-heavy"):
        for phase in ("steady", "changed"):
            assert result.satisfied("tracking", group, phase), (group, phase)

    # Without tracking, the write-heavy tenants (whose FLUSH/COMPACT
    # consumption is unprovisioned) are clearly worse off: their worst
    # satisfaction ratio trails the tracking variant's by a wide gap.
    worst_tracking = min(
        result.satisfaction("tracking", "write-heavy", phase)
        for phase in ("steady", "changed")
    )
    worst_no_profile = min(
        result.satisfaction("no-profile", "write-heavy", phase)
        for phase in ("steady", "changed")
    )
    assert worst_tracking >= 0.9
    assert worst_no_profile < worst_tracking - 0.1, (
        worst_tracking, worst_no_profile
    )
