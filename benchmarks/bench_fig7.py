"""Bench: regenerate Figure 7 (IOP throughput ratios on three SSDs)."""

import pytest

from repro.experiments import fig7
from conftest import run_once


@pytest.mark.figure
def test_fig7_throughput_ratios(benchmark, quick_mode):
    result = run_once(benchmark, fig7.run, quick=quick_mode)
    print()
    print(fig7.render(result))

    profiles = sorted({p for (p, _r, _w) in result.cells})
    assert set(profiles) == {"intel320", "samsung840", "oczvector"}

    for profile in profiles:
        # Near-perfect insulation on average (paper: mean MMR 0.98).
        assert result.mean_mmr(profile) > 0.9, profile
        # Readers and writers track each other in every cell.
        for (p, rsize, wsize), cell in result.cells.items():
            if p != profile:
                continue
            assert cell.mmr > 0.75, (profile, rsize, wsize)

    # The chunking artifact: the worst cells involve 256K ops, where
    # chunked scheduling trades accuracy for responsiveness — but even
    # those stay above 0.75 MMR.
    worst = min(result.cells.values(), key=lambda c: c.mmr)
    assert worst.mmr > 0.75
