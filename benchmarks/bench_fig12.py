"""Bench: regenerate Figure 12 (shifting tenant demand)."""

import pytest

from repro.experiments import fig12
from conftest import run_once


@pytest.mark.figure
def test_fig12_dynamic_demand(benchmark, quick_mode):
    result = run_once(benchmark, fig12.run, quick=quick_mode)
    print()
    print(fig12.render(result))

    # Aligned phase: every group meets its reservation.
    for group in ("read-heavy", "mixed", "write-heavy"):
        assert result.satisfied(group, "aligned"), group

    # Misaligned phase (workload swap, old reservations): the group now
    # issuing expensive requests against its stale reservation is cut
    # far below its aligned-phase throughput...
    rh_aligned, _ = result.throughput["read-heavy"]["aligned"]
    rh_misaligned, _ = result.throughput["read-heavy"]["misaligned"]
    assert rh_misaligned < 0.75 * rh_aligned
    # ...while the swapped counterpart coasts far above its stale
    # (small) reservation on the freed-up capacity.
    achieved, reserved = result.throughput["write-heavy"]["misaligned"]
    assert achieved > 1.5 * reserved

    # Realigning the reservations restores everyone.
    for group in ("read-heavy", "mixed", "write-heavy"):
        assert result.satisfied(group, "realigned"), group

    # Cost profiles swap roles: the initially write-heavy tenants end
    # with read-heavy-like amplified PUT costs and vice versa.
    rh_final = result.costs["read-heavy"]["realigned"][1]
    wh_final = result.costs["write-heavy"]["realigned"][1]
    rh_initial = result.costs["read-heavy"]["aligned"][1]
    wh_initial = result.costs["write-heavy"]["aligned"][1]
    assert wh_final > wh_initial * 1.5  # became expensive
    assert rh_final < rh_initial * 0.7  # became cheap

    # The policy responds to the misalignment by scaling allocations
    # down (overbooking) during that phase.  (In compressed quick-mode
    # timelines the aligned/realigned phases can also sit below 1.0 as
    # compaction profiles keep maturing, so no strict ordering here.)
    assert result.scales["misaligned"] < 1.0
