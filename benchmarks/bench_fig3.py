"""Bench: regenerate Figure 3 (non-linear SSD IOP/s and bandwidth)."""

import pytest

from repro.experiments import fig3
from conftest import run_once

KIB = 1024


@pytest.mark.figure
def test_fig3_device_curves(benchmark, quick_mode):
    result = run_once(benchmark, fig3.run, quick=quick_mode)
    print()
    print(fig3.render(result))

    sizes = sorted({s for (_k, _a, s) in result.points})
    small, large = sizes[0], sizes[-1]

    for access in ("rand", "seq"):
        # IOP throughput peaks at small sizes (controller bound)...
        read_small, _ = result.points[("read", access, small)]
        read_large, _ = result.points[("read", access, large)]
        assert read_small > read_large * 10
        # ...while bandwidth saturates at large sizes (channel bound).
        _, bw_small = result.points[("read", access, small)]
        _, bw_large = result.points[("read", access, large)]
        assert bw_large > bw_small * 3

    # Writes are slower than reads at every size (erase/program penalty).
    for size in sizes:
        read_iops, _ = result.points[("read", "rand", size)]
        write_iops, _ = result.points[("write", "rand", size)]
        assert write_iops < read_iops

    # Sequential writes are no slower than random (log-structured FTL,
    # clustered invalidation -> cheaper GC).
    _, wr_rand_bw = result.points[("write", "rand", large)]
    _, wr_seq_bw = result.points[("write", "seq", large)]
    assert wr_seq_bw >= wr_rand_bw * 0.9

    # Write bandwidth saturates earlier (around 32K) than read (64K+):
    # at 32K writes are within 25% of their peak.
    if 32 * KIB in sizes:
        wr_32k = result.points[("write", "rand", 32 * KIB)][1]
        wr_peak = max(result.points[("write", "rand", s)][1] for s in sizes)
        assert wr_32k > 0.6 * wr_peak
