"""Bench: the chaos experiment (deterministic faults + failure handling).

Runs a fig11-style tenant mix through a scripted device-fault window
with a mid-run engine crash, and asserts the robustness contract:
no acknowledged write is lost, the failure handling is visible in the
per-tenant stats, allocations degrade proportionally and return to the
reservations, and two same-seed runs are byte-identical.
"""

import pytest

from repro.experiments import chaosfig
from conftest import run_once


@pytest.mark.figure
def test_chaos_fault_window(benchmark, quick_mode):
    result = run_once(benchmark, chaosfig.run, quick=quick_mode)
    print()
    print(chaosfig.render(result))

    # The headline: every acknowledged write survived the fault window,
    # the crash, and the recovery — verified by reading each one back.
    assert result.verified
    assert result.total_lost == 0
    for tenant, acked in result.acked_puts.items():
        assert acked > 0, tenant

    # The crash tore unacknowledged records off the WAL tail and the
    # recovery scan replayed the acknowledged ones.
    assert result.torn_records > 0
    assert result.replayed_records > 0

    # Failure handling is visible in the per-tenant request stats:
    # transparent retries everywhere, attempt timeouts during the stall,
    # and requests that waited out the crash — while surfaced errors
    # stay far below the retry count (the node absorbs the chaos).
    total = {
        k: sum(s[k] for s in result.request_stats.values())
        for k in ("retries", "timeouts", "errors", "crashes", "crash_waits")
    }
    assert total["retries"] > 0
    assert total["timeouts"] > 0
    assert total["crashes"] == 1
    assert total["errors"] < total["retries"] / 5

    # The device actually injected faults of every scripted kind.
    assert result.device_faults["read_faults"] > 0
    assert result.device_faults["write_faults"] > 0
    assert result.device_faults["corrupt_reads"] > 0
    assert result.device_faults["degraded_ops"] > 0
    assert result.device_faults["stall_seconds"] > 0
    # ... and the engines detected every corruption via checksums.
    assert result.engine_faults["checksum_failures"] > 0
    assert result.engine_faults["read_retries"] > 0

    # Throughput dips during the window and recovers after it.
    for tenant in result.tenant_rates:
        assert result.dip_ratio(tenant) < 0.6, tenant
        assert result.recovery_ratio(tenant) > 0.8, tenant

    # Graceful degradation: the policy re-estimated capacity downward
    # under the sustained cost inflation (scaling allocations down
    # proportionally), then returned to the reservations afterwards.
    assert result.capacity_reestimates > 0
    assert result.min_effective_capacity < 0.8 * result.capacity_vops
    assert result.min_scale < 0.9
    assert result.final_scale > 0.95


@pytest.mark.figure
def test_chaos_two_runs_identical(benchmark):
    """Same seed, same chaos: the whole outcome is byte-identical."""
    first = run_once(benchmark, chaosfig.run, quick=True)
    second = chaosfig.run(quick=True)
    assert first.fingerprint() == second.fingerprint()
