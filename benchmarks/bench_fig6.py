"""Bench: regenerate Figure 6 (the Libra VOP cost model)."""

import pytest

from repro.experiments import fig6
from conftest import run_once

KIB = 1024


@pytest.mark.figure
def test_fig6_cost_model(benchmark, quick_mode):
    result = run_once(benchmark, fig6.run, quick=quick_mode)
    print()
    print(fig6.render(result))

    sizes = sorted({s for (_k, s) in result.points})
    # Cost-per-byte decays monotonically for both op kinds.
    for kind in ("read", "write"):
        cpks = [result.points[(kind, s)][1] for s in sizes]
        assert all(a >= b * 0.999 for a, b in zip(cpks, cpks[1:])), kind

    # Writes always cost more than reads...
    for size in sizes:
        assert result.points[("write", size)][0] > result.points[("read", size)][0]

    # ...with the gap narrowing at large IOPs (lower erase overhead).
    gap_small = result.points[("write", sizes[0])][0] / result.points[("read", sizes[0])][0]
    gap_large = result.points[("write", sizes[-1])][0] / result.points[("read", sizes[-1])][0]
    assert gap_small > gap_large

    # The paper's anchor: a 1KB read costs about one VOP.
    assert result.points[("read", 1 * KIB)][0] == pytest.approx(1.0, rel=0.05)
    # And a 1KB write costs ~3x that (the 10000-reads / 3000-writes example).
    assert 2.0 < result.points[("write", 1 * KIB)][0] < 4.5
