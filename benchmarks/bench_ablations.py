"""Ablation benches for the design choices DESIGN.md calls out.

These are not paper figures; they quantify the sensitivity of Libra's
accuracy/utilization trade-offs to its tunables:

- large-IOP chunking threshold (responsiveness vs 256K accuracy),
- DDRR round length (fairness granularity vs overhead),
- capacity floor vs mean-capacity provisioning (SLA safety).
"""

import pytest

from repro.analysis.metrics import mmr
from repro.core import SchedulerConfig
from repro.core.capacity import REFERENCE_FLOORS
from repro.ssd import get_profile
from repro.workload.iobench import DeviceEnv, TenantSpec, run_raw_trial

KIB = 1024


def _fairness_with_config(config: SchedulerConfig, read_size, write_size, seed=7):
    profile = get_profile("intel320")
    env = DeviceEnv(profile, seed=seed)
    specs = [
        TenantSpec(f"r{i}", 1.0, read_size=read_size, write_size=write_size)
        for i in range(4)
    ] + [
        TenantSpec(f"w{i}", 0.0, read_size=read_size, write_size=write_size)
        for i in range(4)
    ]
    floor = REFERENCE_FLOORS["intel320"]
    trial = run_raw_trial(
        profile,
        specs,
        duration=0.5,
        warmup=0.15,
        seed=seed,
        allocations={s.name: floor / 8 for s in specs},
        scheduler_config=config,
        env=env,
    )
    return mmr(t.vops for t in trial.tenants.values())


@pytest.mark.figure
def test_ablation_chunk_size(benchmark):
    """Chunking 256K ops: smaller chunks help responsiveness but cost
    VOP-allocation accuracy at the largest sizes."""

    def sweep():
        results = {}
        for chunk in (64 * KIB, 128 * KIB, 512 * KIB):
            config = SchedulerConfig(chunk_size=chunk)
            results[chunk] = _fairness_with_config(config, 256 * KIB, 256 * KIB)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for chunk, value in sorted(results.items()):
        print(f"chunk={chunk // KIB:>4}K  VOP MMR at 256K/256K = {value:.3f}")
    # Every configuration still insulates well.
    assert all(v > 0.8 for v in results.values())


@pytest.mark.figure
def test_ablation_round_length(benchmark):
    """DDRR round length: fairness holds across an order of magnitude."""

    def sweep():
        results = {}
        for seconds in (0.001, 0.005, 0.02):
            config = SchedulerConfig(round_seconds=seconds)
            results[seconds] = _fairness_with_config(config, 4 * KIB, 64 * KIB)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for seconds, value in sorted(results.items()):
        print(f"round={seconds * 1e3:>5.1f}ms  VOP MMR at 4K/64K = {value:.3f}")
    assert all(v > 0.85 for v in results.values())


@pytest.mark.figure
def test_ablation_floor_vs_mean_provisioning(benchmark):
    """Provisioning at the capacity floor never overbooks the observed
    grid; provisioning at the mean would have overbooked a large share
    of workloads (the paper's §4.2 argument for the floor)."""

    def sweep():
        from repro.experiments.fig4 import run as run_fig4

        result = run_fig4(quick=True)
        samples = sorted(result.cells.values())
        floor = min(samples)
        mean = sum(samples) / len(samples)
        overbooked_at_mean = sum(1 for s in samples if s < mean) / len(samples)
        overbooked_at_floor = sum(1 for s in samples if s < floor) / len(samples)
        return floor, mean, overbooked_at_floor, overbooked_at_mean

    floor, mean, at_floor, at_mean = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        f"floor={floor / 1e3:.1f}k mean={mean / 1e3:.1f}k  "
        f"workloads overbooked: floor={at_floor * 100:.0f}%, mean={at_mean * 100:.0f}%"
    )
    assert at_floor == 0.0
    assert at_mean > 0.25
