"""Bench: regenerate Figure 5 (CDF of interference throughput)."""

import pytest

from repro.experiments import fig4, fig5
from conftest import run_once


@pytest.mark.figure
def test_fig5_throughput_cdf(benchmark, quick_mode):
    fig4_result = fig4.run(quick=quick_mode)
    result = run_once(benchmark, fig5.run, quick=quick_mode, fig4_result=fig4_result)
    print()
    print(fig5.render(result))

    # Normalization: every curve starts at >= 1.0 (the floor).
    for label, points in result.curves.items():
        assert points[0][0] >= 1.0 - 1e-9, label

    # Write-leaning mixes sit lower (closer to the floor) than
    # read-dominant ones at the median.
    def median_of(label):
        pts = result.curves[label]
        return next(v for v, f in pts if f >= 0.5)

    assert median_of("25:75") <= median_of("99:1") * 1.05

    # Higher size variance pushes the distribution toward the floor:
    # the varied-size 50:50 curves' medians do not exceed the
    # fixed-size 50:50 median appreciably.
    fixed_median = median_of("50:50")
    for label in result.curves:
        if label.startswith("50:50 s="):
            assert median_of(label) <= fixed_median * 1.15
