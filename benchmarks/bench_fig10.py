"""Bench: regenerate Figure 10 (full-stack VOP throughput + floor)."""

import pytest

from repro.experiments import fig10
from conftest import run_once

KIB = 1024


@pytest.mark.figure
def test_fig10_stack_throughput(benchmark, quick_mode):
    result = run_once(benchmark, fig10.run, quick=quick_mode)
    print()
    print(fig10.render(result))

    sizes = sorted({s for (_k, s) in result.pure})
    # Pure GET workloads run close to the interference-free max.
    for size in sizes:
        assert result.pure[("GET", size)] > 0.9 * result.max_vops
    # Pure PUT workloads drop far below it (FLUSH/COMPACT interference).
    for size in sizes:
        assert result.pure[("PUT", size)] < 0.65 * result.max_vops

    # Mixed throughput degrades as the ratio becomes PUT-heavy
    # (compare medians of the per-ratio sample sets).
    def ratio_median(fraction):
        samples = sorted(
            v for (f, _g, _p), v in result.mixed.items() if f == fraction
        )
        return samples[len(samples) // 2]

    assert ratio_median(0.75) > ratio_median(0.01)

    # The stack-aware floor mirrors the paper's coverage claims: most
    # workloads clear it, and the median unprovisionable-but-usable
    # excess stays modest.
    coverage = result.floor_coverage()
    assert coverage["fraction_below_floor"] < 0.35
    assert coverage["median_unprovisionable"] < 0.35
