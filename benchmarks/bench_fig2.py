"""Bench: regenerate Figure 2 (app-request IO amplification breakdown)."""

import pytest

from repro.experiments import fig2
from conftest import run_once


@pytest.mark.figure
def test_fig2_amplification_breakdown(benchmark, quick_mode):
    result = run_once(benchmark, fig2.run, quick=quick_mode)
    print()
    print(fig2.render(result))

    small = result.points["1K"]
    large = result.points["128K"]
    split = result.points["32K/128K"]
    # PUT (WAL) IO dominates GET IO at small request sizes.
    assert small["PUT write IO"] > small["GET read IO"]
    # WAL cost-per-request falls with size: PUT share shrinks.
    assert large["PUT write IO"] < small["PUT write IO"]
    # Background COMPACT grows with write bandwidth.
    compact_small = small["COMPACT read IO"] + small["COMPACT write IO"]
    compact_large = large["COMPACT read IO"] + large["COMPACT write IO"]
    assert compact_large > compact_small
    # The split workload's GETs terminate in a single pre-indexed file:
    # lowest GET IO of all points.
    assert split["GET read IO"] < min(
        p["GET read IO"] for label, p in result.points.items() if label != "32K/128K"
    ) + 1e-9
    # FLUSH writes happen at every point (the WAL must drain).
    assert all(p["FLUSH write IO"] > 0 for p in result.points.values())
