"""Bench: regenerate Figure 9 (allocation accuracy per cost model)."""

import pytest

from repro.experiments import fig9
from conftest import run_once


@pytest.mark.figure
def test_fig9_cost_model_accuracy(benchmark, quick_mode):
    result = run_once(benchmark, fig9.run, quick=quick_mode)
    print()
    print(fig9.render(result))

    def median(model, category, metric):
        med, _lo, _hi = result.summary(model, category, metric)
        return med

    IOP, VOP = 0, 1
    for category in ("rr", "ww", "rw"):
        # Libra's exact model achieves the best IOP insulation...
        exact = median("exact", category, IOP)
        assert exact > 0.85, (category, exact)
        # ...and fitted tracks it closely.
        assert median("fitted", category, IOP) > exact - 0.15
        # The scheduler enforces VOP shares accurately regardless of
        # model family (accounting fidelity), with exact >= 0.9.
        assert median("exact", category, VOP) > 0.9

    # The baselines lose on insulation for the mixed read/write set:
    # the best baseline stays below Libra's exact model.
    best_baseline = max(
        median(model, "rw", IOP) for model in ("constant", "linear", "fixed")
    )
    assert best_baseline < median("exact", "rw", IOP) + 0.02
    # The fixed model's size-blind charging skews same-kind mixes.
    assert median("fixed", "rr", IOP) < median("exact", "rr", IOP)
