"""Bench: regenerate Figure 4 (IO interference heat maps)."""

import pytest

from repro.core import reference_calibration
from repro.experiments import fig4
from conftest import run_once

KIB = 1024


@pytest.mark.figure
def test_fig4_interference_heatmaps(benchmark, quick_mode):
    result = run_once(benchmark, fig4.run, quick=quick_mode)
    print()
    print(fig4.render(result))

    max_iop = reference_calibration(result.profile).max_iop
    # Interference carves a real valley: the floor sits well below the
    # interference-free maximum...
    assert result.floor < 0.85 * max_iop
    # ...but the device is never destroyed outright.
    assert result.floor > 0.3 * max_iop

    # Read-dominant (99:1) workloads suffer the least; their worst cell
    # beats the global floor comfortably.
    read_dominant = [
        v for (r, s, _rs, _ws), v in result.cells.items() if r == 0.99 and s is None
    ]
    assert min(read_dominant) > result.floor * 1.05

    # The deepest interference involves writes: the floor cell is not a
    # read-dominant one.
    floor_cell = min(result.cells, key=result.cells.get)
    assert floor_cell[0] != 0.99

    # Variable IOP sizes flatten and lower the surface: the sigma rows'
    # spread (max/min) is smaller than the fixed-size 50:50 row's.
    fixed = [v for (r, s, _g, _p), v in result.cells.items() if r == 0.5 and s is None]
    for sigma in {s for (_r, s, _g, _p) in result.cells if s is not None}:
        varied = [v for (r, s2, _g, _p), v in result.cells.items() if r == 0.5 and s2 == sigma]
        assert max(varied) / min(varied) < max(fixed) / min(fixed) * 1.25
