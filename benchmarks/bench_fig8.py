"""Bench: regenerate Figure 8 (competing VOP cost models)."""

import pytest

from repro.experiments import fig8
from conftest import run_once

KIB = 1024


@pytest.mark.figure
def test_fig8_cost_model_comparison(benchmark, quick_mode):
    result = run_once(benchmark, fig8.run, quick=quick_mode)
    print()
    print(fig8.render(result))

    sizes = sorted({s for (_m, _k, s) in result.points})
    large = sizes[-1]

    for kind in ("read", "write"):
        # All models agree at the 1KB anchor.
        anchor = result.points[("exact", kind, 1 * KIB)]
        for model in ("constant", "linear", "fixed"):
            assert result.points[(model, kind, 1 * KIB)] == pytest.approx(
                anchor, rel=0.05
            ), (model, kind)
        # Constant grossly over-charges large ops...
        assert result.points[("constant", kind, large)] > \
            result.points[("exact", kind, large)] * 2
        # ...fixed grossly under-charges them...
        assert result.points[("fixed", kind, large)] < \
            result.points[("exact", kind, large)] / 3
        # ...linear matches the endpoints.
        assert result.points[("linear", kind, large)] == pytest.approx(
            result.points[("exact", kind, large)], rel=0.05
        )
        # Fitted stays close to exact everywhere.
        for size in sizes:
            exact = result.points[("exact", kind, size)]
            fitted = result.points[("fitted", kind, size)]
            assert abs(fitted - exact) / exact < 0.35, (kind, size)
